package infer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/climate"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPlanCoversImageExactlyOnce(t *testing.T) {
	for _, tc := range []struct {
		h, w int
		cfg  Config
	}{
		{32, 32, Config{TileH: 16, TileW: 16, Overlap: 2}},
		{33, 47, Config{TileH: 16, TileW: 16, Overlap: 3}},
		{16, 16, Config{TileH: 16, TileW: 16, Overlap: 2}},
		{100, 30, Config{TileH: 24, TileW: 30, Overlap: 4}},
		{17, 20, Config{TileH: 16, TileW: 16, Overlap: 0}},
	} {
		tiles, err := Plan(tc.h, tc.w, tc.cfg)
		if err != nil {
			t.Fatalf("Plan(%d,%d,%+v): %v", tc.h, tc.w, tc.cfg, err)
		}
		cover := make([]int, tc.h*tc.w)
		for _, tl := range tiles {
			if tl.Y < 0 || tl.X < 0 || tl.Y+tc.cfg.TileH > tc.h || tl.X+tc.cfg.TileW > tc.w {
				t.Fatalf("tile %+v escapes %dx%d image", tl, tc.h, tc.w)
			}
			for y := tl.KeepY0; y < tl.KeepY1; y++ {
				for x := tl.KeepX0; x < tl.KeepX1; x++ {
					cover[(tl.Y+y)*tc.w+tl.X+x]++
				}
			}
		}
		for i, n := range cover {
			if n != 1 {
				t.Fatalf("%dx%d tile %+v: pixel %d covered %d times", tc.h, tc.w, tc.cfg, i, n)
			}
		}
	}
}

func TestPlanCoverageProperty(t *testing.T) {
	f := func(hB, wB, ovB uint8) bool {
		cfg := Config{TileH: 12, TileW: 12, Overlap: int(ovB) % 5}
		h := cfg.TileH + int(hB)%30
		w := cfg.TileW + int(wB)%30
		tiles, err := Plan(h, w, cfg)
		if err != nil {
			return false
		}
		cover := make([]int, h*w)
		for _, tl := range tiles {
			for y := tl.KeepY0; y < tl.KeepY1; y++ {
				for x := tl.KeepX0; x < tl.KeepX1; x++ {
					cover[(tl.Y+y)*w+tl.X+x]++
				}
			}
		}
		for _, n := range cover {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRejectsBadConfigs(t *testing.T) {
	if _, err := Plan(8, 8, Config{TileH: 16, TileW: 16, Overlap: 2}); err == nil {
		t.Error("image smaller than tile should fail")
	}
	if _, err := Plan(32, 32, Config{TileH: 16, TileW: 16, Overlap: 8}); err == nil {
		t.Error("overlap consuming the whole tile should fail")
	}
	if _, err := Plan(32, 32, Config{TileH: 0, TileW: 16}); err == nil {
		t.Error("zero tile should fail")
	}
	if _, err := Plan(32, 32, Config{TileH: 16, TileW: 16, Overlap: -1}); err == nil {
		t.Error("negative overlap should fail")
	}
}

// buildConvNet builds a plain stack of SAME 3×3 convolutions with fixed
// (seeded) weights and a known receptive-field radius of `layers` pixels —
// BatchNorm- and dropout-free so tiled and monolithic passes are exactly
// comparable.
func buildConvNet(channels, classes, h, w, layers int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	images := g.Input("images", tensor.NCHW(1, channels, h, w))
	x := images
	cur := channels
	for l := 0; l < layers; l++ {
		out := 8
		if l == layers-1 {
			out = classes
		}
		w := g.Param("w", tensor.RandNormal(tensor.Shape{out, cur, 3, 3}, 0, 0.3, rng))
		x = g.Apply(nn.NewConv2D(1, 1, 1), x, w)
		if l != layers-1 {
			x = g.Apply(nn.ReLU{}, x)
		}
		cur = out
	}
	return &Network{Graph: g, Images: images, Logits: x}
}

// monolithic runs the same weights over the full image in one pass.
func monolithic(t *testing.T, channels, classes, h, w, layers int, seed int64, fields *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	net := buildConvNet(channels, classes, h, w, layers, seed)
	mask, err := Run(net, fields, Config{TileH: h, TileW: w, Overlap: 0, Precision: graph.FP32})
	if err != nil {
		t.Fatal(err)
	}
	return mask
}

func TestTiledMatchesMonolithic(t *testing.T) {
	// Receptive-field radius = #layers for 3×3 stride-1 convs; overlap at
	// or above it must reproduce the monolithic mask exactly.
	const channels, classes, h, w, layers = 3, 3, 28, 36, 3
	rng := rand.New(rand.NewSource(17))
	fields := tensor.RandNormal(tensor.Shape{channels, h, w}, 0, 1, rng)

	want := monolithic(t, channels, classes, h, w, layers, 99, fields)

	tileNet := buildConvNet(channels, classes, 16, 16, layers, 99)
	got, err := Run(tileNet, fields, Config{TileH: 16, TileW: 16, Overlap: layers, Precision: graph.FP32})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("%d of %d pixels differ between tiled and monolithic inference", diff, len(want.Data()))
	}
}

func TestInsufficientOverlapDisagreesAtSeams(t *testing.T) {
	// Sanity check on the test above: with overlap below the receptive
	// field the seams generally show differences, demonstrating the margin
	// matters (not that the masks trivially agree).
	const channels, classes, h, w, layers = 3, 3, 28, 36, 3
	rng := rand.New(rand.NewSource(18))
	fields := tensor.RandNormal(tensor.Shape{channels, h, w}, 0, 1, rng)
	want := monolithic(t, channels, classes, h, w, layers, 42, fields)
	tileNet := buildConvNet(channels, classes, 16, 16, layers, 42)
	got, err := Run(tileNet, fields, Config{TileH: 16, TileW: 16, Overlap: 0, Precision: graph.FP32})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			diff++
		}
	}
	if diff == 0 {
		t.Skip("zero-overlap tiling happened to agree for this seed; nothing to assert")
	}
}

func TestRunValidatesShapes(t *testing.T) {
	net := buildConvNet(3, 3, 16, 16, 2, 1)
	bad := tensor.New(tensor.Shape{4, 32, 32}) // wrong channel count
	if _, err := Run(net, bad, Config{TileH: 16, TileW: 16, Overlap: 2, Precision: graph.FP32}); err == nil {
		t.Error("channel mismatch should fail")
	}
	if _, err := Run(net, tensor.New(tensor.Shape{3, 32}), Config{TileH: 16, TileW: 16}); err == nil {
		t.Error("rank-2 fields should fail")
	}
	if _, err := Run(net, tensor.New(tensor.Shape{3, 32, 32}), Config{TileH: 8, TileW: 8, Overlap: 1, Precision: graph.FP32}); err == nil {
		t.Error("tile size differing from network window should fail")
	}
}

func TestFromModelOnTinyTiramisu(t *testing.T) {
	// End-to-end: adapt a real model and segment a full synthetic sample
	// larger than the training window.
	const th, tw = 16, 16
	net, err := models.BuildTiramisu(models.TinyTiramisu(models.Config{
		BatchSize: 1, InChannels: climate.NumChannels, NumClasses: climate.NumClasses,
		Height: th, Width: tw, Seed: 3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ds := climate.NewDataset(climate.DefaultGenConfig(48, 64, 7), 1)
	s := ds.Sample(0)
	mask, err := Run(FromModel(net), s.Fields, Config{TileH: th, TileW: tw, Overlap: 2, Precision: graph.FP32})
	if err != nil {
		t.Fatal(err)
	}
	ms := mask.Shape()
	if ms[0] != 48 || ms[1] != 64 {
		t.Fatalf("mask shape %v, want [48 64]", ms)
	}
	for _, v := range mask.Data() {
		if v < 0 || v >= climate.NumClasses {
			t.Fatalf("mask value %v outside class range", v)
		}
	}
}
