// Adaptive-compute serving: reduced-precision kernels and the early-exit
// background-tile path.
//
// # Precision contract
//
// The engine's Config.Precision selects one of three kernel sets with
// explicit, tested guarantees:
//
//	FP32  bit-identical to the training kernels — the parity reference.
//	FP16  every op output rounded through IEEE half precision; logits
//	      carry a tested relative error bound (max |logit − logit_fp32| ≤
//	      2e-3 × max |FP32 logit| over the corpus) and identical argmax
//	      masks on the reference corpus.
//	INT8  inference conv/GEMM kernels replaced by symmetric 8-bit
//	      quantized ones (per-output-channel weight scales, dynamic
//	      per-image activation scales, exact int32 accumulation); same
//	      bound-plus-identical-masks guarantee as FP16 at a 6e-2 relative
//	      bound.
//
// All three keep the batch-invariance property of the FP32 path: each batch
// element quantizes and reduces independently, so masks are bit-identical
// across batch groupings for every precision.
//
// # Early exit
//
// On the paper's workload most tiles are pure background (storms are rare
// and localized), yet the full-resolution decoder dominates the network's
// FLOPs. The exit path evaluates only the encoder's cheap first stage (the
// graph prefix up to Network.Exit), reduces it to a scalar confidence score,
// and lets tiles whose score falls below a calibrated threshold skip the
// decoder entirely: their keep region is written as all-background.
//
// The score is produced by a linear confidence head over pooled tap
// features (per-channel spatial mean, max, min, and a 4×4 grid of cell
// means, so small off-center storms stay visible). Calibrate fits the
// head in closed form — ridge regression against each tile's own full
// decode (storm present in the keep region or not), no labels or gradient
// steps needed — and then chooses the largest threshold that never exits a
// tile whose full decode contains a storm pixel. So on the calibration set
// the adaptive masks are bit-identical to full decodes by construction, and
// the exit rate is whatever the head's storm/background separation buys.
package infer

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Precision aliases graph.Precision so serving callers configure the engine
// without importing the graph package.
type Precision = graph.Precision

// Re-exported precision levels (see the contract above).
const (
	FP32 = graph.FP32
	FP16 = graph.FP16
	INT8 = graph.INT8
)

// HasExit reports whether the network carries an exit tap, i.e. whether the
// early-exit path is available on this runner.
func (r *Runner) HasExit() bool { return r.src.Exit != nil }

// exitSizedFor returns (building on first use) the exit-branch execution
// state for batch b: a clone of the graph prefix up to the exit tap, with
// the same fusion rules and precision as the full-decode clones.
func (r *Runner) exitSizedFor(b int) (*sizedNet, error) {
	if s, ok := r.exitSized[b]; ok {
		return s, nil
	}
	if r.src.Exit == nil {
		return nil, fmt.Errorf("infer: network has no exit tap")
	}
	g, m, err := graph.CloneExitBranch(r.src.Graph, r.src.Logits, r.src.Exit, b, nn.InferenceFusions)
	if err != nil {
		return nil, err
	}
	if r.cfg.Precision == graph.INT8 {
		if err := nn.MarkInt8(g); err != nil {
			return nil, err
		}
	}
	images := m[r.src.Images]
	if images == nil {
		return nil, fmt.Errorf("infer: exit tap does not depend on the image input")
	}
	s := &sizedNet{
		g:      g,
		images: images,
		logits: m[r.src.Exit],
		ex:     graph.NewPooledExecutor(g, r.cfg.Precision, int64(b), r.pool),
		window: tensor.New(tensor.NCHW(b, r.channels, r.cfg.TileH, r.cfg.TileW)),
	}
	s.feeds = map[*graph.Node]*tensor.Tensor{images: s.window}
	r.exitSized[b] = s
	return s, nil
}

// Pooled statistics extracted per tap channel: the spatial mean, max, and
// min, then the mean of each cell of a poolGrid × poolGrid partition of the
// tap (the cell means localize: a storm confined to one corner of the tile
// barely moves the global mean but dominates its cell's).
const (
	poolGrid           = 4
	featuresPerChannel = 3 + poolGrid*poolGrid
)

// ExitHead is the linear confidence head the exit decision scores with:
// score = Weights · pooled(tap) + Bias, where pooled extracts the spatial
// mean, max, and min of each tap channel (so len(Weights) must be 3× the
// tap's channel count). Calibrate fits one in closed form; a zero-value
// head is invalid — callers without a fitted head pass nil to ExitScores
// and get the raw mean-|activation| energy score instead.
type ExitHead struct {
	Weights []float64
	Bias    float64
}

// ExitScores runs the exit branch over up to MaxBatch tiles and writes each
// tile's confidence score into scores[i]. With a head, the score is the
// head's linear read-out over pooled tap features — higher means more
// storm-like; with head == nil it degrades to the tap's mean absolute
// activation (raw feature energy). Only the Fields and Tile of each item
// are read; masks are untouched.
//
// Like RunBatch, the computation of each batch element is arithmetically
// independent of its neighbors, so scores are identical for every grouping
// of tiles into batches.
func (r *Runner) ExitScores(items []BatchItem, scores []float64, head *ExitHead) error {
	n := len(items)
	if n == 0 {
		return nil
	}
	if len(scores) < n {
		return fmt.Errorf("infer: scores buffer %d too small for batch of %d", len(scores), n)
	}
	tap, err := r.exitForward(items)
	if err != nil {
		return err
	}
	ts := tap.Shape()
	cp, th, tw := ts[1], ts[2], ts[3]
	per := tap.NumElements() / n
	td := tap.Data()
	if head != nil && len(head.Weights) != featuresPerChannel*cp {
		return fmt.Errorf("infer: exit head has %d weights, tap wants %d (%d per channel × %d channels)",
			len(head.Weights), featuresPerChannel*cp, featuresPerChannel, cp)
	}
	feats := make([]float64, featuresPerChannel*cp)
	for i := 0; i < n; i++ {
		if head == nil {
			var sum float64
			for _, v := range td[i*per : (i+1)*per] {
				sum += math.Abs(float64(v))
			}
			scores[i] = sum / float64(per)
			continue
		}
		poolTap(td[i*per:(i+1)*per], cp, th, tw, feats)
		s := head.Bias
		for c, w := range head.Weights {
			s += w * feats[c]
		}
		scores[i] = s
	}
	return nil
}

// exitForward crops the items into the exit branch's window, runs the
// branch, and returns the tap tensor ([n, C', h', w']).
func (r *Runner) exitForward(items []BatchItem) (*tensor.Tensor, error) {
	n := len(items)
	if n > r.cfg.maxBatch() {
		return nil, fmt.Errorf("infer: exit batch of %d exceeds max batch %d", n, r.cfg.maxBatch())
	}
	s, err := r.exitSizedFor(n)
	if err != nil {
		return nil, err
	}
	th, tw := r.cfg.TileH, r.cfg.TileW
	for i, it := range items {
		fs := it.Fields.Shape()
		if fs.Rank() != 3 || fs[0] != r.channels {
			return nil, fmt.Errorf("infer: fields must be [%d,H,W], got %v", r.channels, fs)
		}
		crop(it.Fields, s.window, i, it.Tile.Y, it.Tile.X, th, tw)
	}
	if err := s.ex.Forward(s.feeds); err != nil {
		return nil, fmt.Errorf("infer: exit batch of %d tiles: %w", n, err)
	}
	return s.ex.Value(s.logits), nil
}

// poolTap extracts the featuresPerChannel pooled statistics of one batch
// element's tap values (cp channels over an h×w spatial grid) into out.
func poolTap(td []float32, cp, h, w int, out []float64) {
	hw := h * w
	for c := 0; c < cp; c++ {
		seg := td[c*hw : (c+1)*hw]
		sum := float64(seg[0])
		mx, mn := float64(seg[0]), float64(seg[0])
		var cell [poolGrid * poolGrid]float64
		var cn [poolGrid * poolGrid]int
		for p, v := range seg {
			f := float64(v)
			if p > 0 {
				sum += f
				if f > mx {
					mx = f
				}
				if f < mn {
					mn = f
				}
			}
			cy := (p / w) * poolGrid / h
			cx := (p % w) * poolGrid / w
			cell[cy*poolGrid+cx] += f
			cn[cy*poolGrid+cx]++
		}
		o := out[featuresPerChannel*c:]
		o[0] = sum / float64(hw)
		o[1] = mx
		o[2] = mn
		for q := range cell {
			if cn[q] > 0 {
				o[3+q] = cell[q] / float64(cn[q])
			}
		}
	}
}

// WriteBackground stitches an all-background (class 0) keep region for the
// item — the output of an exited tile. It is the exact mask a full decode
// would produce for any tile whose every keep-region argmax is background,
// which is what calibration guarantees for exited tiles.
func WriteBackground(it BatchItem) {
	md := it.Mask.Data()
	w := it.Mask.Shape()[1]
	t := it.Tile
	for y := t.KeepY0; y < t.KeepY1; y++ {
		row := md[(t.Y+y)*w+t.X:]
		for x := t.KeepX0; x < t.KeepX1; x++ {
			row[x] = 0
		}
	}
}

// Calibration is the result of an offline exit calibration pass: a fitted
// confidence head plus the threshold to exit under.
type Calibration struct {
	// Threshold is the exit decision boundary: a tile exits (skips the
	// decoder) iff its exit score is strictly below Threshold. +Inf when
	// the calibration set contains no storm tiles (everything may exit).
	Threshold float64
	// Head is the fitted linear confidence head the threshold is
	// calibrated against; serve with both together.
	Head ExitHead
	// Tiles and StormTiles count the calibration tiles seen and how many
	// of them contained at least one non-background keep-region pixel
	// under a full decode.
	Tiles, StormTiles int
	// ExitRate is the fraction of calibration tiles that would exit at
	// Threshold — the compute saving the calibration set predicts.
	ExitRate float64
	// MinStormScore is the lowest score observed on a storm tile (+Inf if
	// none): the safety headroom above Threshold.
	MinStormScore float64
}

// ridgeLambda regularizes the head fit. Small on purpose: the head should
// interpolate the calibration set as tightly as possible — the bit-parity
// guarantee is per-set, and a sharper fit buys a higher exit rate.
const ridgeLambda = 1e-6

// Calibrate fits the exit head and computes the largest exit threshold that
// never exits a storm tile on the given calibration fields. Every tile is
// fully decoded and its pooled tap features extracted with the runner's own
// engines (so scores match serving-time precision exactly); the head is the
// closed-form ridge regression of storm-in-keep-region (0/1, read off each
// tile's own decode) on those features; and the threshold is placed at the
// minimum head score over storm tiles. margin in (0, 1] pulls it down
// toward the background floor for headroom on unseen traffic: the threshold
// interpolates from the lowest background score (margin → 0) to the lowest
// storm score (margin = 1; 0 means 1, i.e. no safety gap).
//
// Because exit requires score < Threshold ≤ every storm tile's score, no
// storm tile of the calibration set exits — and a tile that does exit is a
// tile whose full decode was all-background in its keep region, so writing
// background is bit-identical there. On unseen traffic the guarantee is
// statistical; margin < 1 buys headroom.
func (r *Runner) Calibrate(fields []*tensor.Tensor, margin float64) (Calibration, error) {
	if !r.HasExit() {
		return Calibration{}, fmt.Errorf("infer: network has no exit tap to calibrate")
	}
	if margin < 0 || margin > 1 {
		return Calibration{}, fmt.Errorf("infer: calibration margin %v outside (0, 1]", margin)
	}
	if margin == 0 {
		margin = 1
	}
	if len(fields) == 0 {
		return Calibration{}, fmt.Errorf("infer: no calibration fields")
	}
	var feats [][]float64
	var storm []bool
	kb := r.cfg.maxBatch()
	items := make([]BatchItem, 0, kb)
	for _, f := range fields {
		mask, err := r.Segment(f)
		if err != nil {
			return Calibration{}, err
		}
		fs := f.Shape()
		plan, err := Plan(fs[1], fs[2], r.cfg)
		if err != nil {
			return Calibration{}, err
		}
		for start := 0; start < len(plan); start += kb {
			end := min(start+kb, len(plan))
			items = items[:0]
			for _, t := range plan[start:end] {
				items = append(items, BatchItem{Fields: f, Tile: t, Mask: mask})
			}
			tap, err := r.exitForward(items)
			if err != nil {
				return Calibration{}, err
			}
			ts := tap.Shape()
			cp, th, tw := ts[1], ts[2], ts[3]
			per := tap.NumElements() / len(items)
			td := tap.Data()
			for i, it := range items {
				u := make([]float64, featuresPerChannel*cp)
				poolTap(td[i*per:(i+1)*per], cp, th, tw, u)
				feats = append(feats, u)
				storm = append(storm, stormInKeep(mask, it.Tile))
			}
		}
	}
	head := ExitHead{}
	head.Weights, head.Bias = ridgeFit(feats, storm, ridgeLambda)

	minStorm, minBg := math.Inf(1), math.Inf(1)
	scores := make([]float64, len(feats))
	stormTiles := 0
	for i, u := range feats {
		s := head.Bias
		for c, w := range head.Weights {
			s += w * u[c]
		}
		scores[i] = s
		if storm[i] {
			stormTiles++
			minStorm = math.Min(minStorm, s)
		} else {
			minBg = math.Min(minBg, s)
		}
	}
	thr := math.Inf(1)
	if stormTiles > 0 {
		thr = minStorm
		if margin < 1 && !math.IsInf(minBg, 1) {
			thr = minBg + margin*(minStorm-minBg)
		}
		thr = math.Min(thr, minStorm)
	}
	exited := 0
	for _, s := range scores {
		if s < thr {
			exited++
		}
	}
	return Calibration{
		Threshold:     thr,
		Head:          head,
		Tiles:         len(feats),
		StormTiles:    stormTiles,
		ExitRate:      float64(exited) / float64(len(feats)),
		MinStormScore: minStorm,
	}, nil
}

// ridgeFit solves the regularized least squares min ‖Xw + b − y‖² + λ‖w‖²
// in closed form (normal equations + Gaussian elimination with partial
// pivoting; the bias is an unregularized extra column). The feature count
// is 3× the tap channel count — double digits for the registered networks —
// so the dense solve is microseconds.
func ridgeFit(X [][]float64, y []bool, lambda float64) (weights []float64, bias float64) {
	n := len(X)
	d := len(X[0]) + 1 // + bias column
	a := make([][]float64, d)
	rhs := make([]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
		a[i][i] = lambda
	}
	a[d-1][d-1] = 0
	row := make([]float64, d)
	for r := 0; r < n; r++ {
		copy(row, X[r])
		row[d-1] = 1
		yv := 0.0
		if y[r] {
			yv = 1
		}
		for i := 0; i < d; i++ {
			rhs[i] += row[i] * yv
			for j := i; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 1; i < d; i++ { // mirror the symmetric lower triangle
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		if a[col][col] == 0 {
			continue
		}
		inv := 1 / a[col][col]
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < d; j++ {
				a[r][j] -= f * a[col][j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	w := make([]float64, d)
	for i := 0; i < d; i++ {
		if a[i][i] != 0 {
			w[i] = rhs[i] / a[i][i]
		}
	}
	return w[:d-1], w[d-1]
}

// stormInKeep reports whether the tile's keep region of mask contains any
// non-background pixel.
func stormInKeep(mask *tensor.Tensor, t Tile) bool {
	md := mask.Data()
	w := mask.Shape()[1]
	for y := t.KeepY0; y < t.KeepY1; y++ {
		row := md[(t.Y+y)*w+t.X:]
		for x := t.KeepX0; x < t.KeepX1; x++ {
			if row[x] != 0 {
				return true
			}
		}
	}
	return false
}
