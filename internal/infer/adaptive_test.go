package infer

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/climate"
	"repro/internal/models"
	"repro/internal/tensor"
)

// TestQuantizedBatchParityAcrossBatchSizes extends the FP32 batch-parity
// property to the reduced-precision kernel sets: for FP16 and INT8 the
// stitched mask must be bit-identical for MaxBatch 1, small batches with a
// ragged tail, and one batch holding every tile — each batch element
// quantizes and reduces independently, so grouping cannot change results.
func TestQuantizedBatchParityAcrossBatchSizes(t *testing.T) {
	const tile, h, w = 16, 37, 45
	net := buildBNDropNet(t, tile, 0)
	inet := FromModel(net)
	rng := rand.New(rand.NewSource(5))
	fields := tensor.RandNormal(tensor.Shape{4, h, w}, 0, 1, rng)

	for _, prec := range []Precision{FP16, INT8} {
		base := Config{TileH: tile, TileW: tile, Overlap: 2, Precision: prec}
		tiles, err := Plan(h, w, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(tiles)%5 == 0 {
			t.Fatalf("want a ragged tail for MaxBatch 5, got %d tiles", len(tiles))
		}
		var ref *tensor.Tensor
		for _, kb := range []int{1, 3, 5, len(tiles)} {
			cfg := base
			cfg.MaxBatch = kb
			mask, err := Run(inet, fields, cfg)
			if err != nil {
				t.Fatalf("%v MaxBatch %d: %v", prec, kb, err)
			}
			if ref == nil {
				ref = mask
				continue
			}
			for i, v := range ref.Data() {
				if mask.Data()[i] != v {
					t.Fatalf("%v MaxBatch %d diverges from serial at pixel %d", prec, kb, i)
				}
			}
		}
	}
}

// logitBounds is the tested max-abs logit error of each reduced-precision
// kernel set against FP32, relative to the corpus's largest FP32 logit
// magnitude — the quantitative half of the precision contract (the
// qualitative half, identical argmax masks, is asserted alongside).
// Measured on the reference corpus: FP16 ≈ 6.5e-4, INT8 ≈ 2.6e-2; the
// bounds carry ~2× headroom.
var logitBounds = map[Precision]float64{FP16: 2e-3, INT8: 6e-2}

// TestQuantizedLogitErrorBoundAndMaskParity pins the precision contract on
// a reference corpus of synthetic CAM5 snapshots: FP16 and INT8 logits stay
// within their documented max-abs error bound of FP32, and the argmax masks
// are identical.
func TestQuantizedLogitErrorBoundAndMaskParity(t *testing.T) {
	const tile, h, w = 16, 33, 40
	inet, err := buildClimateNet(tile)
	if err != nil {
		t.Fatal(err)
	}
	ds := climate.NewDataset(climate.DefaultGenConfig(h, w, 11), 3)

	base := Config{TileH: tile, TileW: tile, Overlap: 2, MaxBatch: 4}
	for _, prec := range []Precision{FP16, INT8} {
		cfg := base
		cfg.Precision = prec
		rq, err := NewRunner(inet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := NewRunner(inet, base)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr, scale float64
		for i := 0; i < 3; i++ {
			fields := ds.Sample(i).Fields
			wantMask, err := rf.Segment(fields)
			if err != nil {
				t.Fatal(err)
			}
			gotMask, err := rq.Segment(fields)
			if err != nil {
				t.Fatal(err)
			}
			for p, v := range wantMask.Data() {
				if gotMask.Data()[p] != v {
					t.Fatalf("%v: sample %d mask differs from FP32 at pixel %d", prec, i, p)
				}
			}
			e, s := maxLogitDiff(t, rf, rq, fields, base)
			maxErr = math.Max(maxErr, e)
			scale = math.Max(scale, s)
		}
		if maxErr > logitBounds[prec]*scale {
			t.Errorf("%v: max-abs logit error %v exceeds documented bound %v × max |logit| %v",
				prec, maxErr, logitBounds[prec], scale)
		}
		if maxErr == 0 && prec == INT8 {
			t.Errorf("%v: logit error is exactly zero — quantized kernels did not run", prec)
		}
		rq.Close()
		rf.Close()
	}
}

// maxLogitDiff runs the first few planned tiles through both runners'
// full-decode executors and returns the largest absolute logit difference
// plus the largest reference-logit magnitude (the relative bound's scale).
func maxLogitDiff(t *testing.T, a, b *Runner, fields *tensor.Tensor, cfg Config) (worst, scale float64) {
	t.Helper()
	fs := fields.Shape()
	plan, err := Plan(fs[1], fs[2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) > 4 {
		plan = plan[:4]
	}
	la := tileLogits(t, a, fields, plan)
	lb := tileLogits(t, b, fields, plan)
	for i := range la {
		worst = math.Max(worst, math.Abs(la[i]-lb[i]))
		scale = math.Max(scale, math.Abs(la[i]))
	}
	return worst, scale
}

// tileLogits forwards the tiles one at a time through the runner's batch-1
// full-decode clone and concatenates the raw logits.
func tileLogits(t *testing.T, r *Runner, fields *tensor.Tensor, plan []Tile) []float64 {
	t.Helper()
	s, err := r.sizedFor(1)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, tl := range plan {
		crop(fields, s.window, 0, tl.Y, tl.X, r.cfg.TileH, r.cfg.TileW)
		if err := s.ex.Forward(s.feeds); err != nil {
			t.Fatal(err)
		}
		for _, v := range s.ex.Value(s.logits).Data() {
			out = append(out, float64(v))
		}
	}
	return out
}

// buildClimateNet builds an untrained tiny Tiramisu over the climate
// channel count, exit tap included.
func buildClimateNet(tile int) (*Network, error) {
	net, err := models.BuildTiramisu(models.TinyTiramisu(models.Config{
		BatchSize: 1, InChannels: climate.NumChannels, NumClasses: climate.NumClasses,
		Height: tile, Width: tile, Seed: 3,
	}))
	if err != nil {
		return nil, err
	}
	return FromModel(net), nil
}

// TestExitScoresBatchInvariant asserts exit scores are bit-identical across
// batch groupings, with and without a confidence head.
func TestExitScoresBatchInvariant(t *testing.T) {
	const tile, h, w = 16, 37, 45
	net := buildBNDropNet(t, tile, 0)
	inet := FromModel(net)
	if inet.Exit == nil {
		t.Fatal("test network has no exit tap")
	}
	rng := rand.New(rand.NewSource(9))
	fields := tensor.RandNormal(tensor.Shape{4, h, w}, 0, 1, rng)
	cfg := Config{TileH: tile, TileW: tile, Overlap: 2, MaxBatch: 16}
	r, err := NewRunner(inet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	plan, err := Plan(h, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, len(plan))
	for i, tl := range plan {
		items[i] = BatchItem{Fields: fields, Tile: tl}
	}
	cp := inet.Exit.Shape[1]
	head := &ExitHead{Weights: make([]float64, featuresPerChannel*cp), Bias: 0.25}
	hr := rand.New(rand.NewSource(1))
	for i := range head.Weights {
		head.Weights[i] = hr.NormFloat64()
	}
	for _, h := range []*ExitHead{nil, head} {
		ref := make([]float64, len(items))
		if err := r.ExitScores(items, ref, h); err != nil {
			t.Fatal(err)
		}
		for _, kb := range []int{1, 3, 5} {
			got := make([]float64, len(items))
			for start := 0; start < len(items); start += kb {
				end := min(start+kb, len(items))
				if err := r.ExitScores(items[start:end], got[start:end], h); err != nil {
					t.Fatal(err)
				}
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("head=%v batch %d: score %d is %v, serial %v", h != nil, kb, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestCalibrateNeverExitsStormTiles is the calibration guarantee: scoring
// every calibration tile with the fitted head, no tile whose full decode
// holds a storm pixel scores below the returned threshold — so every tile
// that would exit is one whose keep region a full decode writes as
// background anyway.
func TestCalibrateNeverExitsStormTiles(t *testing.T) {
	const tile, h, w = 16, 48, 48
	inet, err := buildClimateNet(tile)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TileH: tile, TileW: tile, Overlap: 2, MaxBatch: 8}
	r, err := NewRunner(inet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ds := climate.NewDataset(climate.DefaultGenConfig(h, w, 3), 3)
	fields := make([]*tensor.Tensor, 3)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}
	cal, err := r.Calibrate(fields, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Tiles == 0 {
		t.Fatal("calibration saw no tiles")
	}
	if cal.StormTiles > 0 && cal.MinStormScore < cal.Threshold {
		t.Fatalf("min storm score %v below threshold %v", cal.MinStormScore, cal.Threshold)
	}
	scores := make([]float64, cfg.MaxBatch)
	for _, f := range fields {
		mask, err := r.Segment(f)
		if err != nil {
			t.Fatal(err)
		}
		fs := f.Shape()
		plan, err := Plan(fs[1], fs[2], cfg)
		if err != nil {
			t.Fatal(err)
		}
		for start := 0; start < len(plan); start += cfg.MaxBatch {
			end := min(start+cfg.MaxBatch, len(plan))
			items := make([]BatchItem, 0, cfg.MaxBatch)
			for _, tl := range plan[start:end] {
				items = append(items, BatchItem{Fields: f, Tile: tl, Mask: mask})
			}
			if err := r.ExitScores(items, scores, &cal.Head); err != nil {
				t.Fatal(err)
			}
			for i, it := range items {
				if scores[i] < cal.Threshold && stormInKeep(mask, it.Tile) {
					t.Fatalf("storm tile at (%d,%d) scores %v below threshold %v",
						it.Tile.Y, it.Tile.X, scores[i], cal.Threshold)
				}
			}
		}
	}
}

// TestCalibrateMarginLowersThreshold: margin < 1 must not raise the
// threshold, and must still never exit storm tiles.
func TestCalibrateMarginLowersThreshold(t *testing.T) {
	const tile, h, w = 16, 32, 32
	inet, err := buildClimateNet(tile)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TileH: tile, TileW: tile, Overlap: 2, MaxBatch: 4}
	r, err := NewRunner(inet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fields := []*tensor.Tensor{climate.NewDataset(climate.DefaultGenConfig(h, w, 5), 1).Sample(0).Fields}
	full, err := r.Calibrate(fields, 1)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := r.Calibrate(fields, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Threshold > full.Threshold {
		t.Fatalf("margin 0.5 raised the threshold: %v > %v", tight.Threshold, full.Threshold)
	}
	if tight.ExitRate > full.ExitRate {
		t.Fatalf("margin 0.5 raised the exit rate: %v > %v", tight.ExitRate, full.ExitRate)
	}
}

// TestCalibrateValidates covers the error paths: margin out of range, an
// empty calibration set, and a network without an exit tap.
func TestCalibrateValidates(t *testing.T) {
	const tile = 16
	inet, err := buildClimateNet(tile)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TileH: tile, TileW: tile, Overlap: 2, MaxBatch: 4}
	r, err := NewRunner(inet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fields := []*tensor.Tensor{climate.NewDataset(climate.DefaultGenConfig(tile, tile, 5), 1).Sample(0).Fields}
	if _, err := r.Calibrate(fields, -0.1); err == nil {
		t.Error("negative margin accepted")
	}
	if _, err := r.Calibrate(fields, 1.5); err == nil {
		t.Error("margin above 1 accepted")
	}
	if _, err := r.Calibrate(nil, 1); err == nil {
		t.Error("empty calibration set accepted")
	}

	noExit := *inet
	noExit.Exit = nil
	rn, err := NewRunner(&noExit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	if rn.HasExit() {
		t.Error("HasExit true without a tap")
	}
	if _, err := rn.Calibrate(fields, 1); err == nil || !strings.Contains(err.Error(), "exit tap") {
		t.Errorf("calibration without exit tap: %v", err)
	}
	if err := rn.ExitScores([]BatchItem{{Fields: fields[0], Tile: Tile{KeepX1: tile, KeepY1: tile}}}, make([]float64, 1), nil); err == nil {
		t.Error("ExitScores without exit tap accepted")
	}
}

// TestExitScoresValidatesHeadShape: a head whose weight count does not
// match the tap's pooled feature count must be rejected, not silently
// truncated.
func TestExitScoresValidatesHeadShape(t *testing.T) {
	const tile = 16
	net := buildBNDropNet(t, tile, 0)
	inet := FromModel(net)
	cfg := Config{TileH: tile, TileW: tile, Overlap: 2, MaxBatch: 2}
	r, err := NewRunner(inet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rng := rand.New(rand.NewSource(2))
	fields := tensor.RandNormal(tensor.Shape{4, tile, tile}, 0, 1, rng)
	items := []BatchItem{{Fields: fields, Tile: Tile{KeepX1: tile, KeepY1: tile}}}
	bad := &ExitHead{Weights: []float64{1, 2, 3}}
	if err := r.ExitScores(items, make([]float64, 1), bad); err == nil || !strings.Contains(err.Error(), "weights") {
		t.Errorf("mismatched head accepted: %v", err)
	}
}

// TestWriteBackgroundZeroesKeepRegionOnly: the exit path's mask write must
// cover exactly the keep region — overlap margins belong to neighbors.
func TestWriteBackgroundZeroesKeepRegionOnly(t *testing.T) {
	mask := tensor.Full(tensor.Shape{8, 8}, 7)
	it := BatchItem{
		Mask: mask,
		Tile: Tile{Y: 2, X: 2, KeepY0: 1, KeepY1: 3, KeepX0: 1, KeepX1: 3},
	}
	WriteBackground(it)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			inKeep := y >= 3 && y < 5 && x >= 3 && x < 5
			v := mask.Data()[y*8+x]
			if inKeep && v != 0 {
				t.Fatalf("keep pixel (%d,%d) not zeroed", y, x)
			}
			if !inKeep && v != 7 {
				t.Fatalf("pixel (%d,%d) outside keep region clobbered", y, x)
			}
		}
	}
}

// TestRidgeFitInterpolatesSeparableData sanity-checks the closed-form
// solver on a case with a known answer.
func TestRidgeFitInterpolatesSeparableData(t *testing.T) {
	X := [][]float64{{0, 1}, {0, 2}, {1, 0.5}, {1, 1.5}}
	y := []bool{false, false, true, true}
	w, b := ridgeFit(X, y, 1e-9)
	for i, u := range X {
		s := b
		for c := range u {
			s += w[c] * u[c]
		}
		want := 0.0
		if y[i] {
			want = 1
		}
		if math.Abs(s-want) > 1e-6 {
			t.Fatalf("sample %d: predicted %v, want %v", i, s, want)
		}
	}
}
