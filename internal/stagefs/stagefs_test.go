package stagefs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeReadBWThreadScaling(t *testing.T) {
	fs := SummitGPFS()
	if bw := fs.NodeReadBW(0); bw != fs.NodeReadBW(1) {
		t.Fatal("0 threads should clamp to 1")
	}
	// Monotone (strictly below the cap), sub-linear, capped.
	prev := 0.0
	for th := 1; th <= 64; th *= 2 {
		bw := fs.NodeReadBW(th)
		if bw < prev {
			t.Fatalf("bandwidth decreased at %d threads", th)
		}
		if bw == prev && prev < fs.NodeCapBW {
			t.Fatalf("bandwidth stalled below cap at %d threads", th)
		}
		if bw > fs.NodeCapBW {
			t.Fatalf("bandwidth %g exceeds cap %g", bw, fs.NodeCapBW)
		}
		prev = bw
	}
	if fs.NodeReadBW(64) != fs.NodeCapBW {
		t.Fatal("high thread counts should saturate the node cap")
	}
	// Sub-linear: 8 threads < 8× one thread.
	if fs.NodeReadBW(8) >= 8*fs.NodeReadBW(1) {
		t.Fatal("scaling should be sub-linear")
	}
}

func TestEffectiveBWFairShare(t *testing.T) {
	fs := SharedFS{AggregateBW: 100e9, PerThreadBW: 2e9, ThreadScalingExp: 1, NodeCapBW: 10e9}
	// Few nodes: limited by node rate.
	if got := fs.EffectiveBW(2, 8); got != 10e9 {
		t.Fatalf("node-limited bw = %g", got)
	}
	// Many nodes: limited by the aggregate share.
	if got := fs.EffectiveBW(100, 8); got != 1e9 {
		t.Fatalf("share-limited bw = %g", got)
	}
	if fs.EffectiveBW(0, 1) != fs.EffectiveBW(1, 1) {
		t.Fatal("0 nodes should clamp to 1")
	}
}

func TestReadSecondsAndSaturation(t *testing.T) {
	fs := PizDaintLustre()
	tm := fs.ReadSeconds(2048, 8, 1e9)
	want := 1e9 / (112e9 / 2048)
	if math.Abs(tm-want)/want > 1e-9 {
		t.Fatalf("read time %g want %g", tm, want)
	}
	if fs.Saturated(111e9) || !fs.Saturated(113e9) {
		t.Fatal("saturation threshold wrong")
	}
}

func TestLocalStores(t *testing.T) {
	nvme := SummitNVMe()
	tmpfs := PizDaintTmpfs()
	if !nvme.Fits(700e9) || nvme.Fits(900e9) {
		t.Fatal("NVMe capacity checks wrong")
	}
	if tmpfs.Fits(100e9) {
		t.Fatal("tmpfs should not fit 100 GB")
	}
	if nvme.WriteSeconds(2.1e9) < 0.99 || nvme.WriteSeconds(2.1e9) > 1.01 {
		t.Fatalf("write time %g", nvme.WriteSeconds(2.1e9))
	}
}

func TestEffectiveBWProperties(t *testing.T) {
	fs := SummitGPFS()
	// Property: per-node effective bandwidth never increases as more nodes
	// contend, for any thread count.
	f := func(nodesA, nodesB uint8, threads uint8) bool {
		na, nb := int(nodesA)+1, int(nodesB)+1
		if na > nb {
			na, nb = nb, na
		}
		th := int(threads)%16 + 1
		return fs.EffectiveBW(na, th) >= fs.EffectiveBW(nb, th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
