// Package stagefs models the storage tiers involved in the paper's data
// staging (Section V-A1): a shared parallel file system whose aggregate
// bandwidth is divided among concurrent readers, per-node read bandwidth
// that scales sub-linearly with reader threads (the paper measured
// 1.79 GB/s with one thread and 11.98 GB/s with eight), and node-local
// stores (Summit's 800 GB burst-buffer SSDs, Piz Daint's tmpfs).
package stagefs

import (
	"fmt"
	"math"
)

// SharedFS is a parallel file system bandwidth model.
type SharedFS struct {
	Name string
	// AggregateBW is the file system's total read bandwidth in bytes/s.
	AggregateBW float64
	// PerThreadBW is one reader thread's achievable bandwidth in bytes/s.
	PerThreadBW float64
	// ThreadScalingExp is the exponent of the sub-linear thread speedup:
	// node bandwidth = PerThreadBW · threads^exp (≈0.915 reproduces the
	// paper's 6.7× at 8 threads).
	ThreadScalingExp float64
	// NodeCapBW caps one node's read bandwidth regardless of threads.
	NodeCapBW float64
}

// NodeReadBW returns one node's achievable read bandwidth with the given
// thread count, before aggregate contention.
func (fs SharedFS) NodeReadBW(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	bw := fs.PerThreadBW * math.Pow(float64(threads), fs.ThreadScalingExp)
	if fs.NodeCapBW > 0 && bw > fs.NodeCapBW {
		bw = fs.NodeCapBW
	}
	return bw
}

// EffectiveBW returns the per-node bandwidth when `nodes` read
// concurrently with `threads` threads each: the thread-scaled node rate
// capped by a fair share of the aggregate.
func (fs SharedFS) EffectiveBW(nodes, threads int) float64 {
	if nodes < 1 {
		nodes = 1
	}
	node := fs.NodeReadBW(threads)
	share := fs.AggregateBW / float64(nodes)
	return math.Min(node, share)
}

// ReadSeconds returns the time for `nodes` concurrent readers to each pull
// bytesPerNode with the given thread count.
func (fs SharedFS) ReadSeconds(nodes, threads int, bytesPerNode float64) float64 {
	return bytesPerNode / fs.EffectiveBW(nodes, threads)
}

// Saturated reports whether the given concurrent demand (bytes/s) exceeds
// the file system's aggregate bandwidth — the regime of the paper's Fig 5
// where training directly from Lustre loses efficiency.
func (fs SharedFS) Saturated(demandBytesPerSec float64) bool {
	return demandBytesPerSec > fs.AggregateBW
}

// LocalStore is a node-local staging tier.
type LocalStore struct {
	Name          string
	CapacityBytes float64
	ReadBW        float64 // bytes/s served to the input pipeline
	WriteBW       float64
}

// Fits reports whether a per-node shard fits the local tier.
func (l LocalStore) Fits(bytes float64) bool {
	return bytes <= l.CapacityBytes
}

// WriteSeconds returns the time to persist bytes into the store.
func (l LocalStore) WriteSeconds(bytes float64) float64 { return bytes / l.WriteBW }

// String describes the store.
func (l LocalStore) String() string {
	return fmt.Sprintf("%s(%.0f GB)", l.Name, l.CapacityBytes/1e9)
}

// SummitGPFS models Summit's Spectrum Scale (Alpine) file system as the
// paper experienced it: ~2.5 TB/s aggregate, per-thread scaling measured
// in Section V-A1.
func SummitGPFS() SharedFS {
	return SharedFS{
		Name:             "Summit GPFS",
		AggregateBW:      2.5e12,
		PerThreadBW:      1.79e9,
		ThreadScalingExp: 0.915,
		NodeCapBW:        12.5e9,
	}
}

// PizDaintLustre models the Piz Daint Lustre file system: 744 GB/s peak,
// but the paper's workload observed an effective read limit of ~112 GB/s.
func PizDaintLustre() SharedFS {
	return SharedFS{
		Name:             "Piz Daint Lustre",
		AggregateBW:      112e9,
		PerThreadBW:      1.5e9,
		ThreadScalingExp: 0.915,
		NodeCapBW:        6e9,
	}
}

// SummitNVMe models the 800 GB node-local burst buffer.
func SummitNVMe() LocalStore {
	return LocalStore{Name: "NVMe", CapacityBytes: 800e9, ReadBW: 6e9, WriteBW: 2.1e9}
}

// PizDaintTmpfs models the Piz Daint DRAM staging tier (tmpfs): fast but
// small — the capacity constraint the paper notes.
func PizDaintTmpfs() LocalStore {
	return LocalStore{Name: "tmpfs", CapacityBytes: 32e9, ReadBW: 40e9, WriteBW: 20e9}
}
