package modelpar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func TestNewPlanBalancedPartition(t *testing.T) {
	for _, tc := range []struct{ h, ranks int }{
		{8, 1}, {8, 2}, {9, 2}, {10, 3}, {7, 7}, {768, 6}, {100, 3},
	} {
		p, err := NewPlan(tc.h, tc.ranks)
		if err != nil {
			t.Fatalf("NewPlan(%d,%d): %v", tc.h, tc.ranks, err)
		}
		covered := 0
		for r, rg := range p.Ranges {
			if rg.Len() < tc.h/tc.ranks || rg.Len() > tc.h/tc.ranks+1 {
				t.Errorf("h=%d ranks=%d: rank %d slab %d rows, want balanced", tc.h, tc.ranks, r, rg.Len())
			}
			if rg.Lo != covered {
				t.Errorf("h=%d ranks=%d: rank %d starts at %d, want %d", tc.h, tc.ranks, r, rg.Lo, covered)
			}
			covered = rg.Hi
		}
		if covered != tc.h {
			t.Errorf("h=%d ranks=%d: ranges cover %d rows", tc.h, tc.ranks, covered)
		}
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(3, 4); err == nil {
		t.Error("NewPlan(3,4) should fail: more ranks than rows")
	}
	if _, err := NewPlan(8, 0); err == nil {
		t.Error("NewPlan(8,0) should fail")
	}
}

func TestPlanPartitionProperty(t *testing.T) {
	// Property: for any valid (h, ranks), ranges tile [0, h) exactly.
	f := func(h16, r8 uint8) bool {
		ranks := int(r8)%6 + 1
		h := ranks + int(h16)%100
		p, err := NewPlan(h, ranks)
		if err != nil {
			return false
		}
		covered := 0
		for _, rg := range p.Ranges {
			if rg.Lo != covered || rg.Hi <= rg.Lo {
				return false
			}
			covered = rg.Hi
		}
		return covered == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaloRadius(t *testing.T) {
	for _, tc := range []struct{ kh, dil, want int }{
		{1, 1, 0}, {3, 1, 1}, {5, 1, 2}, {7, 1, 3},
		{3, 2, 2}, {3, 12, 12}, {3, 36, 36},
	} {
		if got := HaloRadius(tc.kh, tc.dil); got != tc.want {
			t.Errorf("HaloRadius(%d,%d) = %d, want %d", tc.kh, tc.dil, got, tc.want)
		}
	}
}

func TestExchangeHalosFillsNeighbourRows(t *testing.T) {
	// 4 ranks, 8 rows, halo 1. Fill each rank's slab with its rank id;
	// after exchange the halo rows must hold the neighbour ids (or zero at
	// the global boundary).
	const ranks, h, w = 4, 8, 3
	p, err := NewPlan(h, ranks)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(simnet.Loopback(ranks))
	errs := make([]string, ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		local := tensor.Full(tensor.NCHW(1, 1, p.LocalRows(r), w), float32(r+1))
		ext := ExchangeHalos(World(c), p, local, 1)
		wantTop := float32(0)
		if r > 0 {
			wantTop = float32(r)
		}
		wantBottom := float32(0)
		if r < ranks-1 {
			wantBottom = float32(r + 2)
		}
		eh := ext.Shape()[2]
		for x := 0; x < w; x++ {
			if ext.At(0, 0, 0, x) != wantTop {
				errs[r] = "top halo wrong"
			}
			if ext.At(0, 0, eh-1, x) != wantBottom {
				errs[r] = "bottom halo wrong"
			}
			if ext.At(0, 0, 1, x) != float32(r+1) {
				errs[r] = "interior corrupted"
			}
		}
	})
	for r, e := range errs {
		if e != "" {
			t.Errorf("rank %d: %s", r, e)
		}
	}
}

func TestExchangeHalosZeroIsIdentity(t *testing.T) {
	p, _ := NewPlan(4, 2)
	world := mpi.NewWorld(simnet.Loopback(2))
	world.Run(func(c *mpi.Comm) {
		local := tensor.Full(tensor.NCHW(1, 1, 2, 2), 3)
		if got := ExchangeHalos(World(c), p, local, 0); got != local {
			panic("halo 0 must return the input unchanged")
		}
	})
}

// serialConv runs the reference nn.Conv2D with SAME padding.
func serialConv(x, w *tensor.Tensor, dilation int) *tensor.Tensor {
	pad := HaloRadius(w.Shape()[2], dilation)
	conv := nn.NewConv2D(1, pad, dilation)
	return conv.Forward([]*tensor.Tensor{x, w})
}

func distributedForward(t *testing.T, x, w *tensor.Tensor, dilation, ranks int) *tensor.Tensor {
	t.Helper()
	xs := x.Shape()
	p, err := NewPlan(xs[2], ranks)
	if err != nil {
		t.Fatal(err)
	}
	var full *tensor.Tensor
	world := mpi.NewWorld(simnet.Loopback(ranks))
	world.Run(func(c *mpi.Comm) {
		var input *tensor.Tensor
		if c.Rank() == 0 {
			input = x
		}
		local := Scatter(World(c), p, 0, input)
		out := ConvSpec{Dilation: dilation}.Forward(World(c), p, local, w)
		if g := Gather(World(c), p, 0, out); g != nil {
			full = g
		}
	})
	return full
}

func TestConvForwardMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name               string
		n, cin, cout, h, w int
		kh, dil, ranks     int
	}{
		{"3x3-2ranks", 1, 3, 4, 8, 6, 3, 1, 2},
		{"3x3-4ranks", 2, 2, 3, 12, 5, 3, 1, 4},
		{"5x5-3ranks", 1, 2, 2, 13, 7, 5, 1, 3},
		{"atrous-d2", 1, 3, 2, 16, 6, 3, 2, 2},
		{"atrous-d4", 1, 1, 1, 20, 4, 3, 4, 2},
		{"1x1-nohalo", 1, 4, 8, 9, 5, 1, 1, 3},
		{"uneven-slabs", 1, 2, 2, 11, 4, 3, 1, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x := tensor.RandNormal(tensor.NCHW(tc.n, tc.cin, tc.h, tc.w), 0, 1, rng)
			w := tensor.RandNormal(tensor.Shape{tc.cout, tc.cin, tc.kh, tc.kh}, 0, 0.5, rng)
			want := serialConv(x, w, tc.dil)
			got := distributedForward(t, x, w, tc.dil, tc.ranks)
			assertClose(t, want, got, 1e-5)
		})
	}
}

func TestConvForwardProperty(t *testing.T) {
	// Property: distributed == serial for random small geometries.
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64, hBits, rBits, kBits uint8) bool {
		lr := rand.New(rand.NewSource(seed))
		ranks := int(rBits)%3 + 2 // 2..4
		kh := []int{1, 3, 5}[int(kBits)%3]
		dil := 1
		minH := ranks * HaloRadius(kh, dil)
		if minH < ranks {
			minH = ranks
		}
		h := minH + int(hBits)%8 + kh
		x := tensor.RandNormal(tensor.NCHW(1, 2, h, 4), 0, 1, lr)
		w := tensor.RandNormal(tensor.Shape{2, 2, kh, kh}, 0, 0.5, lr)
		want := serialConv(x, w, dil)
		got := distributedForward(t, x, w, dil, ranks)
		return maxAbsDiff(want, got) < 1e-5
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConvBackwardMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		n, cin, cout, h, w, kh, dil, ranks int
	}{
		{1, 2, 3, 10, 5, 3, 1, 2},
		{1, 2, 2, 12, 4, 3, 2, 3},
		{2, 1, 2, 9, 6, 5, 1, 2},
	} {
		x := tensor.RandNormal(tensor.NCHW(tc.n, tc.cin, tc.h, tc.w), 0, 1, rng)
		w := tensor.RandNormal(tensor.Shape{tc.cout, tc.cin, tc.kh, tc.kh}, 0, 0.5, rng)
		pad := HaloRadius(tc.kh, tc.dil)
		conv := nn.NewConv2D(1, pad, tc.dil)
		out := conv.Forward([]*tensor.Tensor{x, w})
		gradOut := tensor.RandNormal(out.Shape(), 0, 1, rng)
		ref := conv.Backward([]*tensor.Tensor{x, w}, out, gradOut)
		wantGX, wantGW := ref[0], ref[1]

		p, err := NewPlan(tc.h, tc.ranks)
		if err != nil {
			t.Fatal(err)
		}
		var gotGX *tensor.Tensor
		gotGWs := make([]*tensor.Tensor, tc.ranks)
		world := mpi.NewWorld(simnet.Loopback(tc.ranks))
		world.Run(func(c *mpi.Comm) {
			var in, go_ *tensor.Tensor
			if c.Rank() == 0 {
				in, go_ = x, gradOut
			}
			localX := Scatter(World(c), p, 0, in)
			localG := Scatter(World(c), p, 0, go_)
			gx, gw := ConvSpec{Dilation: tc.dil}.Backward(World(c), p, localX, w, localG)
			gotGWs[c.Rank()] = gw
			if g := Gather(World(c), p, 0, gx); g != nil {
				gotGX = g
			}
		})
		assertClose(t, wantGX, gotGX, 1e-4)
		// Every rank must hold the identical completed weight gradient.
		for r, gw := range gotGWs {
			if gw == nil {
				t.Fatalf("rank %d produced no weight gradient", r)
			}
			assertClose(t, wantGW, gw, 1e-4)
			_ = r
		}
	}
}

func TestStackForwardMatchesSerial(t *testing.T) {
	// Three-layer conv+ReLU stack, dilations 1,2,1 — checks halo re-exchange
	// between layers and that point-wise ops need no communication.
	rng := rand.New(rand.NewSource(47))
	const h, w, ranks = 14, 6, 2
	x := tensor.RandNormal(tensor.NCHW(1, 3, h, w), 0, 1, rng)
	layers := []Layer{
		{Weights: tensor.RandNormal(tensor.Shape{4, 3, 3, 3}, 0, 0.4, rng), Spec: ConvSpec{Dilation: 1}, ReLU: true},
		{Weights: tensor.RandNormal(tensor.Shape{4, 4, 3, 3}, 0, 0.4, rng), Spec: ConvSpec{Dilation: 2}, ReLU: true},
		{Weights: tensor.RandNormal(tensor.Shape{2, 4, 3, 3}, 0, 0.4, rng), Spec: ConvSpec{Dilation: 1}, ReLU: false},
	}
	want := x
	for _, l := range layers {
		want = serialConv(want, l.Weights, l.Spec.Dilation)
		if l.ReLU {
			want = tensor.ReLU(want)
		}
	}

	p, err := NewPlan(h, ranks)
	if err != nil {
		t.Fatal(err)
	}
	var got *tensor.Tensor
	world := mpi.NewWorld(simnet.Loopback(ranks))
	world.Run(func(c *mpi.Comm) {
		var in *tensor.Tensor
		if c.Rank() == 0 {
			in = x
		}
		local := Scatter(World(c), p, 0, in)
		out := StackForward(World(c), p, local, layers)
		if g := Gather(World(c), p, 0, out); g != nil {
			got = g
		}
	})
	assertClose(t, want, got, 1e-4)
}

func TestScatterGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const ranks = 3
	x := tensor.RandNormal(tensor.NCHW(2, 3, 10, 4), 0, 1, rng)
	p, err := NewPlan(10, ranks)
	if err != nil {
		t.Fatal(err)
	}
	var got *tensor.Tensor
	world := mpi.NewWorld(simnet.Loopback(ranks))
	world.Run(func(c *mpi.Comm) {
		var in *tensor.Tensor
		if c.Rank() == 0 {
			in = x
		}
		local := Scatter(World(c), p, 0, in)
		if g := Gather(World(c), p, 0, local); g != nil {
			got = g
		}
	})
	assertClose(t, x, got, 0)
}

func TestExchangeHalosDeeperThanSlab(t *testing.T) {
	// A halo deeper than a neighbour's slab pulls rows from several ranks
	// on each side. 4 ranks × 2 rows, halo 3: rank 1's extended slab must
	// see rank 0's rows, both of rank 2's, one of rank 3's, and a zero row
	// beyond the top boundary.
	const ranks, h, w = 4, 8, 2
	p, err := NewPlan(h, ranks)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(simnet.Loopback(ranks))
	exts := make([]*tensor.Tensor, ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		// Row value = global row index + 1 (0 marks the boundary fill).
		local := tensor.New(tensor.NCHW(1, 1, 2, w))
		for i := 0; i < 2; i++ {
			for x := 0; x < w; x++ {
				local.Set(float32(p.Ranges[r].Lo+i+1), 0, 0, i, x)
			}
		}
		exts[r] = ExchangeHalos(World(c), p, local, 3)
	})
	for r := 0; r < ranks; r++ {
		lo := p.Ranges[r].Lo
		for i := 0; i < 2+2*3; i++ {
			g := lo - 3 + i // global row this ext row represents
			want := float32(0)
			if g >= 0 && g < h {
				want = float32(g + 1)
			}
			if got := exts[r].At(0, 0, i, 0); got != want {
				t.Errorf("rank %d ext row %d (global %d) = %v, want %v", r, i, g, got, want)
			}
		}
	}
}

func TestConvDeepHaloMatchesSerial(t *testing.T) {
	// Strongly atrous convolutions on a fine decomposition: the halo
	// (dilation × kernel radius) exceeds the slab height, exercising the
	// multi-rank exchange end to end, forward and backward.
	rng := rand.New(rand.NewSource(53))
	for _, tc := range []struct {
		h, ranks, kh, dil int
	}{
		{12, 4, 7, 1}, // halo 3 > slab 3
		{12, 4, 3, 4}, // halo 4 > slab 3
		{16, 4, 3, 6}, // halo 6 > slab 4
	} {
		x := tensor.RandNormal(tensor.NCHW(1, 2, tc.h, 5), 0, 1, rng)
		w := tensor.RandNormal(tensor.Shape{2, 2, tc.kh, tc.kh}, 0, 0.5, rng)
		want := serialConv(x, w, tc.dil)
		got := distributedForward(t, x, w, tc.dil, tc.ranks)
		assertClose(t, want, got, 1e-4)

		// Backward under the same geometry.
		pad := HaloRadius(tc.kh, tc.dil)
		conv := nn.NewConv2D(1, pad, tc.dil)
		out := conv.Forward([]*tensor.Tensor{x, w})
		gradOut := tensor.RandNormal(out.Shape(), 0, 1, rng)
		ref := conv.Backward([]*tensor.Tensor{x, w}, out, gradOut)

		p, err := NewPlan(tc.h, tc.ranks)
		if err != nil {
			t.Fatal(err)
		}
		var gotGX *tensor.Tensor
		var gotGW *tensor.Tensor
		world := mpi.NewWorld(simnet.Loopback(tc.ranks))
		world.Run(func(c *mpi.Comm) {
			var in, g *tensor.Tensor
			if c.Rank() == 0 {
				in, g = x, gradOut
			}
			localX := Scatter(World(c), p, 0, in)
			localG := Scatter(World(c), p, 0, g)
			gx, gw := ConvSpec{Dilation: tc.dil}.Backward(World(c), p, localX, w, localG)
			if c.Rank() == 0 {
				gotGW = gw
			}
			if full := Gather(World(c), p, 0, gx); full != nil {
				gotGX = full
			}
		})
		assertClose(t, ref[0], gotGX, 1e-4)
		assertClose(t, ref[1], gotGW, 1e-4)
	}
}

func TestHaloBytesAccounting(t *testing.T) {
	p, _ := NewPlan(12, 3)
	layers := []Layer{
		{Weights: tensor.New(tensor.Shape{4, 3, 3, 3}), Spec: ConvSpec{Dilation: 1}},
		{Weights: tensor.New(tensor.Shape{4, 4, 5, 5}), Spec: ConvSpec{Dilation: 1}},
	}
	// Middle rank: both neighbours. Layer 1: 3 ch × 1 row; layer 2: 4 ch × 2 rows.
	want := 2*(1*3*1*8*4) + 2*(1*4*2*8*4)
	if got := HaloBytes(p, 1, 1, 8, layers); got != want {
		t.Errorf("HaloBytes middle = %d, want %d", got, want)
	}
	// Edge rank 0: one neighbour, half the traffic.
	if got := HaloBytes(p, 0, 1, 8, layers); got != want/2 {
		t.Errorf("HaloBytes edge = %d, want %d", got, want/2)
	}
}

func TestHaloTrafficBeatsAllreduceForWideLayers(t *testing.T) {
	// The Section VIII motivation: for full-resolution layers, halo bytes
	// per step are far smaller than all-reducing the layer's weights —
	// the regime where spatial decomposition wins.
	p, _ := NewPlan(768, 6)
	w := tensor.New(tensor.Shape{256, 256, 3, 3})
	layers := []Layer{{Weights: w, Spec: ConvSpec{Dilation: 1}}}
	halo := HaloBytes(p, 3, 1, 1152, layers)
	weightBytes := w.NumElements() * 4
	// Ring all-reduce moves ~2× the buffer.
	if halo >= 2*weightBytes {
		t.Errorf("halo %d B should be below allreduce %d B for this geometry", halo, 2*weightBytes)
	}
}

func assertClose(t *testing.T, want, got *tensor.Tensor, tol float64) {
	t.Helper()
	if got == nil {
		t.Fatal("got nil tensor")
	}
	if !want.Shape().Equal(got.Shape()) {
		t.Fatalf("shape mismatch: want %v got %v", want.Shape(), got.Shape())
	}
	if d := maxAbsDiff(want, got); d > tol {
		t.Fatalf("max abs diff %g > tol %g", d, tol)
	}
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	ad, bd := a.Data(), b.Data()
	m := 0.0
	for i := range ad {
		if d := math.Abs(float64(ad[i] - bd[i])); d > m {
			m = d
		}
	}
	return m
}
