package modelpar

import (
	"repro/internal/mpi"
)

// Comm is the communication slice modelpar needs. It is satisfied by a
// whole world (World) or by a subgroup of ranks (NewGroup), which is what
// lets spatial decomposition compose with data parallelism: each data
// replica runs the same halo-exchange code over its own spatial group.
type Comm interface {
	// Rank returns this rank's index within the group.
	Rank() int
	// Size returns the group size.
	Size() int
	// Send transmits to the group rank dst.
	Send(dst, tag int, data []float32)
	// Recv blocks for a message from the group rank src.
	Recv(src, tag int) []float32
	// Allreduce sums data in place across the group.
	Allreduce(data []float32)
}

// worldComm adapts a full mpi.Comm as a Comm.
type worldComm struct{ c *mpi.Comm }

// World wraps an mpi rank endpoint so the whole world acts as one spatial
// group.
func World(c *mpi.Comm) Comm { return worldComm{c} }

func (w worldComm) Rank() int                         { return w.c.Rank() }
func (w worldComm) Size() int                         { return w.c.Size() }
func (w worldComm) Send(dst, tag int, data []float32) { w.c.Send(dst, tag, data) }
func (w worldComm) Recv(src, tag int) []float32       { return w.c.Recv(src, tag) }
func (w worldComm) Allreduce(data []float32)          { w.c.Allreduce(data, mpi.RecursiveDoubling) }

// groupComm restricts communication to an ordered subset of world ranks.
type groupComm struct {
	c     *mpi.Comm
	ranks []int // world ranks, group order
	me    int   // my index in ranks
}

// NewGroup builds a Comm over the given world ranks (which must contain the
// caller). Group rank i corresponds to world rank ranks[i].
func NewGroup(c *mpi.Comm, ranks []int) Comm {
	me := -1
	for i, r := range ranks {
		if r == c.Rank() {
			me = i
		}
	}
	if me < 0 {
		panic("modelpar: calling rank not in group")
	}
	return groupComm{c: c, ranks: append([]int(nil), ranks...), me: me}
}

func (g groupComm) Rank() int { return g.me }
func (g groupComm) Size() int { return len(g.ranks) }

func (g groupComm) Send(dst, tag int, data []float32) {
	g.c.Send(g.ranks[dst], tag, data)
}

func (g groupComm) Recv(src, tag int) []float32 {
	return g.c.Recv(g.ranks[src], tag)
}

func (g groupComm) Allreduce(data []float32) {
	g.c.AllreduceGroup(data, g.ranks)
}
