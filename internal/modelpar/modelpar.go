// Package modelpar implements the model-parallel execution scheme the
// paper's Section VIII singles out as indispensable beyond pure data
// parallelism: spatial domain decomposition. Activations are split across
// ranks along the image height; every rank computes its slab of every
// layer, and before each convolution the ranks exchange halo rows with
// their neighbours so slab-local convolutions produce exactly the rows a
// serial convolution would. Point-wise layers need no communication;
// convolution weight gradients are partial sums that all-reduce across the
// spatial group.
//
// The package is functional, not analytic: slabs are real tensors, halos
// move through internal/mpi over a simnet fabric, and distributed results
// are bit-comparable with the serial nn.Conv2D kernels (see the tests).
// The analytic counterpart used for at-scale projection lives in
// internal/perfmodel (ModelParallelConfig).
package modelpar

import (
	"fmt"

	"repro/internal/tensor"
)

// Tag namespace for halo traffic; stays clear of the mpi collective tags.
// Messages are matched by (sender, tag), so two constant tags — one per
// destination window — suffice even when a deep halo pulls rows from
// several ranks on the same side.
const (
	tagTopFill    = 5 << 16 // rows destined for the receiver's top halo window
	tagBottomFill = 6 << 16 // rows destined for the receiver's bottom halo window
)

// Range is a half-open row interval [Lo, Hi) of the global image height.
type Range struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Plan fixes how a global height decomposes over a spatial group of ranks.
// All ranks of the group must construct identical plans (same h, ranks).
type Plan struct {
	H      int // global image height
	Ranks  int
	Ranges []Range // one contiguous slab per rank, in rank order
}

// NewPlan splits h rows over ranks slabs, balanced to within one row
// (remainder rows go to the lowest ranks, matching block distribution).
func NewPlan(h, ranks int) (*Plan, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("modelpar: %d ranks", ranks)
	}
	if h < ranks {
		return nil, fmt.Errorf("modelpar: cannot split %d rows over %d ranks", h, ranks)
	}
	p := &Plan{H: h, Ranks: ranks, Ranges: make([]Range, ranks)}
	base, rem := h/ranks, h%ranks
	lo := 0
	for r := 0; r < ranks; r++ {
		n := base
		if r < rem {
			n++
		}
		p.Ranges[r] = Range{Lo: lo, Hi: lo + n}
		lo += n
	}
	return p, nil
}

// LocalRows returns rank's slab height.
func (p *Plan) LocalRows(rank int) int { return p.Ranges[rank].Len() }

// HaloRadius returns the number of extra rows a SAME, stride-1 convolution
// with the given kernel height and dilation needs on each side of a slab.
func HaloRadius(kh, dilation int) int {
	if kh < 1 || dilation < 1 {
		panic(fmt.Sprintf("modelpar: bad kernel geometry kh=%d dil=%d", kh, dilation))
	}
	return dilation * (kh - 1) / 2
}

// haloPieces enumerates, for a destination rank's top or bottom halo
// window, the (owner, global row interval) pieces that fill it. Rows
// beyond the global image boundary have no owner (they stay zero).
func haloPieces(p *Plan, winLo, winHi int) []struct{ owner, lo, hi int } {
	var out []struct{ owner, lo, hi int }
	for r := 0; r < p.Ranks; r++ {
		lo := max(winLo, p.Ranges[r].Lo)
		hi := min(winHi, p.Ranges[r].Hi)
		if lo < hi {
			out = append(out, struct{ owner, lo, hi int }{r, lo, hi})
		}
	}
	return out
}

// ExchangeHalos returns rank c.Rank()'s slab extended by halo rows above
// and below, filled from the owning ranks' rows. A halo deeper than a
// neighbour's slab pulls rows from several ranks on that side (the regime
// of strongly atrous layers on fine decompositions). Rows beyond the
// global image boundary are zero, so a convolution over the extended slab
// with no height padding reproduces SAME zero padding exactly.
//
// local must have shape [N, C, localH, W] where localH matches the plan.
// A zero halo returns local unchanged.
func ExchangeHalos(c Comm, p *Plan, local *tensor.Tensor, halo int) *tensor.Tensor {
	if halo == 0 {
		return local
	}
	if halo < 0 {
		panic("modelpar: negative halo")
	}
	rank := c.Rank()
	ls := local.Shape()
	n, ch, lh, w := ls[0], ls[1], ls[2], ls[3]
	if lh != p.LocalRows(rank) {
		panic(fmt.Sprintf("modelpar: slab has %d rows, plan expects %d", lh, p.LocalRows(rank)))
	}
	myLo := p.Ranges[rank].Lo

	ext := tensor.New(tensor.NCHW(n, ch, lh+2*halo, w))
	extH := lh + 2*halo
	// Interior copy: global row g lands at ext row g−myLo+halo.
	copyRows(ext, local, halo, 0, lh, w, n, ch, extH, lh)

	// Post all sends first (sends never block in this MPI), then receive.
	// For every other rank, ship the slices of my slab that fall inside its
	// two halo windows.
	for r := 0; r < p.Ranks; r++ {
		if r == rank {
			continue
		}
		for _, win := range []struct{ lo, hi, tag int }{
			{p.Ranges[r].Lo - halo, p.Ranges[r].Lo, tagTopFill},
			{p.Ranges[r].Hi, p.Ranges[r].Hi + halo, tagBottomFill},
		} {
			lo := max(win.lo, p.Ranges[rank].Lo)
			hi := min(win.hi, p.Ranges[rank].Hi)
			if lo < hi {
				c.Send(r, win.tag, packRows(local, lo-myLo, hi-lo, w, n, ch, lh))
			}
		}
	}
	// Receive my own windows from their owners, in deterministic order.
	for _, piece := range haloPieces(p, myLo-halo, myLo) {
		buf := c.Recv(piece.owner, tagTopFill)
		unpackRows(ext, buf, piece.lo-(myLo-halo), piece.hi-piece.lo, w, n, ch, extH)
	}
	myHi := p.Ranges[rank].Hi
	for _, piece := range haloPieces(p, myHi, myHi+halo) {
		buf := c.Recv(piece.owner, tagBottomFill)
		unpackRows(ext, buf, piece.lo-(myLo-halo), piece.hi-piece.lo, w, n, ch, extH)
	}
	return ext
}

// packRows flattens rows [lo, lo+rows) of every (n, c) plane of t
// ([N,C,H,W]) into one contiguous buffer ordered [N, C, rows, W].
func packRows(t *tensor.Tensor, lo, rows, w, n, ch, h int) []float32 {
	out := make([]float32, n*ch*rows*w)
	d := t.Data()
	idx := 0
	for b := 0; b < n; b++ {
		for c := 0; c < ch; c++ {
			planeOff := (b*ch + c) * h * w
			copy(out[idx:idx+rows*w], d[planeOff+lo*w:planeOff+(lo+rows)*w])
			idx += rows * w
		}
	}
	return out
}

// unpackRows scatters a packRows buffer into rows [lo, lo+rows) of ext.
func unpackRows(ext *tensor.Tensor, buf []float32, lo, rows, w, n, ch, h int) {
	d := ext.Data()
	idx := 0
	for b := 0; b < n; b++ {
		for c := 0; c < ch; c++ {
			planeOff := (b*ch + c) * h * w
			copy(d[planeOff+lo*w:planeOff+(lo+rows)*w], buf[idx:idx+rows*w])
			idx += rows * w
		}
	}
}

// copyRows copies srcRows rows starting at srcLo from src into dst at dstLo,
// per (n, c) plane. dstH and srcH are the plane heights of dst and src.
func copyRows(dst, src *tensor.Tensor, dstLo, srcLo, srcRows, w, n, ch, dstH, srcH int) {
	dd, sd := dst.Data(), src.Data()
	for b := 0; b < n; b++ {
		for c := 0; c < ch; c++ {
			dOff := (b*ch+c)*dstH*w + dstLo*w
			sOff := (b*ch+c)*srcH*w + srcLo*w
			copy(dd[dOff:dOff+srcRows*w], sd[sOff:sOff+srcRows*w])
		}
	}
}

// Scatter splits a full tensor [N, C, H, W] held by root into plan slabs,
// delivering each rank its [N, C, localH, W] piece. Every rank calls it;
// non-roots pass nil for full.
func Scatter(c Comm, p *Plan, root int, full *tensor.Tensor) *tensor.Tensor {
	const tag = 7 << 16
	rank := c.Rank()
	if rank == root {
		fs := full.Shape()
		n, ch, h, w := fs[0], fs[1], fs[2], fs[3]
		if h != p.H {
			panic(fmt.Sprintf("modelpar: tensor height %d != plan height %d", h, p.H))
		}
		var mine *tensor.Tensor
		for r := 0; r < p.Ranks; r++ {
			rg := p.Ranges[r]
			buf := packRows(full, rg.Lo, rg.Len(), w, n, ch, h)
			if r == root {
				mine = tensor.FromSlice(tensor.NCHW(n, ch, rg.Len(), w), buf)
				continue
			}
			// First message carries the shape header, then the payload.
			c.Send(r, tag, []float32{float32(n), float32(ch), float32(rg.Len()), float32(w)})
			c.Send(r, tag+1, buf)
		}
		return mine
	}
	hdr := c.Recv(root, tag)
	n, ch, lh, w := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
	buf := c.Recv(root, tag+1)
	return tensor.FromSlice(tensor.NCHW(n, ch, lh, w), buf)
}

// Gather reassembles plan slabs into the full tensor at root (nil
// elsewhere). The inverse of Scatter.
func Gather(c Comm, p *Plan, root int, local *tensor.Tensor) *tensor.Tensor {
	const tag = 8 << 16
	rank := c.Rank()
	ls := local.Shape()
	n, ch, lh, w := ls[0], ls[1], ls[2], ls[3]
	if lh != p.LocalRows(rank) {
		panic(fmt.Sprintf("modelpar: gather slab %d rows, plan expects %d", lh, p.LocalRows(rank)))
	}
	if rank != root {
		c.Send(root, tag+rank, local.Data())
		return nil
	}
	full := tensor.New(tensor.NCHW(n, ch, p.H, w))
	for r := 0; r < p.Ranks; r++ {
		rg := p.Ranges[r]
		var buf []float32
		if r == root {
			buf = local.Data()
		} else {
			buf = c.Recv(r, tag+r)
		}
		unpackRows(full, buf, rg.Lo, rg.Len(), w, n, ch, p.H)
	}
	return full
}
