package modelpar

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvSpec describes a SAME, stride-1 (optionally atrous) convolution to run
// under spatial decomposition. Stride-1 SAME layers keep every rank's output
// slab aligned with its input slab, so one plan serves a whole stack of
// layers — the property that makes spatial decomposition attractive for the
// paper's full-resolution decoder.
type ConvSpec struct {
	Dilation int
}

// geom builds the slab-local geometry: full SAME padding in width, no height
// padding (the halo rows substitute for it).
func (cs ConvSpec) geom(extH, w int, ws tensor.Shape) tensor.ConvGeom {
	d := cs.Dilation
	return tensor.ConvGeom{
		InH: extH, InW: w,
		KH: ws[2], KW: ws[3],
		StrideH: 1, StrideW: 1,
		PadH: 0, PadW: HaloRadius(ws[3], d),
		DilH: d, DilW: d,
	}
}

// Forward computes this rank's output slab of the convolution: the halo
// exchange extends the local input slab, then a slab-local im2col+GEMM
// produces exactly the rows a serial SAME convolution would produce for
// this rank's range. local is [N, Cin, localH, W], w is [Cout, Cin, KH, KW].
func (cs ConvSpec) Forward(c Comm, p *Plan, local, w *tensor.Tensor) *tensor.Tensor {
	ls, ws := local.Shape(), w.Shape()
	if ls[1] != ws[1] {
		panic(fmt.Sprintf("modelpar: conv channel mismatch input %d weight %d", ls[1], ws[1]))
	}
	halo := HaloRadius(ws[2], cs.Dilation)
	ext := ExchangeHalos(c, p, local, halo)

	n, cin := ls[0], ls[1]
	cout := ws[0]
	es := ext.Shape()
	g := cs.geom(es[2], es[3], ws)
	oh, ow := g.OutH(), g.OutW()
	if oh != ls[2] || ow != ls[3] {
		panic(fmt.Sprintf("modelpar: slab conv produced %dx%d, want %dx%d", oh, ow, ls[2], ls[3]))
	}
	cols := oh * ow
	k := cin * g.KH * g.KW

	out := tensor.New(tensor.NCHW(n, cout, oh, ow))
	col := make([]float32, k*cols)
	extSize := cin * es[2] * es[3]
	for b := 0; b < n; b++ {
		tensor.Im2col(ext.Data()[b*extSize:(b+1)*extSize], cin, g, col)
		tensor.Gemm(false, false, cout, cols, k, 1, w.Data(), k, col, cols,
			0, out.Data()[b*cout*cols:], cols)
	}
	return out
}

// Backward computes this rank's slab of the input gradient and the full
// weight gradient. The weight gradient is a partial sum over this rank's
// output rows, completed with an all-reduce across the spatial group; the
// input gradient spills into halo rows that are sent back to the owning
// neighbours and accumulated (the adjoint of the forward halo exchange).
func (cs ConvSpec) Backward(c Comm, p *Plan, local, w, gradOut *tensor.Tensor) (gradX, gradW *tensor.Tensor) {
	ls, ws := local.Shape(), w.Shape()
	n, cin := ls[0], ls[1]
	cout := ws[0]
	halo := HaloRadius(ws[2], cs.Dilation)
	ext := ExchangeHalos(c, p, local, halo)
	es := ext.Shape()
	g := cs.geom(es[2], es[3], ws)
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	k := cin * g.KH * g.KW
	extSize := cin * es[2] * es[3]

	gradExt := tensor.New(es)
	gradW = tensor.New(ws)
	col := make([]float32, k*cols)
	for b := 0; b < n; b++ {
		gOut := gradOut.Data()[b*cout*cols : (b+1)*cout*cols]
		// Partial weight gradient from this slab's rows.
		tensor.Im2col(ext.Data()[b*extSize:(b+1)*extSize], cin, g, col)
		tensor.Gemm(false, true, cout, k, cols, 1, gOut, cols, col, cols, 1, gradW.Data(), k)
		// Extended-slab input gradient (includes halo spill).
		tensor.Gemm(true, false, k, cols, cout, 1, w.Data(), k, gOut, cols, 0, col, cols)
		tensor.Col2im(col, cin, g, gradExt.Data()[b*extSize:(b+1)*extSize])
	}

	// Complete the weight gradient across the spatial group.
	c.Allreduce(gradW.Data())

	// Return halo spill to the neighbours that own those rows and fold in
	// the spill they send us.
	gradX = accumulateHaloSpill(c, p, gradExt, halo, n, cin, ls[2], ls[3])
	return gradX, gradW
}

// tagSpill carries gradient contributions back to the rank that owns the
// rows. Any (sender, receiver) pair exchanges at most one spill piece per
// call — a sender's halo windows sit strictly above and below its slab, so
// only one of them can intersect another rank's contiguous range — which
// makes a single tag sufficient.
const tagSpill = 9 << 16

// accumulateHaloSpill extracts the interior of an extended-slab gradient,
// returns the halo-row gradients to the ranks that own those rows (possibly
// several ranks deep on each side), and adds the contributions received
// from every rank whose extended slab overlapped this one — the exact
// adjoint of ExchangeHalos.
func accumulateHaloSpill(c Comm, p *Plan, gradExt *tensor.Tensor, halo, n, ch, lh, w int) *tensor.Tensor {
	if halo == 0 {
		return gradExt
	}
	rank := c.Rank()
	extH := lh + 2*halo
	myLo, myHi := p.Ranges[rank].Lo, p.Ranges[rank].Hi
	grad := tensor.New(tensor.NCHW(n, ch, lh, w))
	copyRows(grad, gradExt, 0, halo, lh, w, n, ch, lh, extH)

	// Send each owner its slice of my halo windows.
	for _, piece := range haloPieces(p, myLo-halo, myLo) {
		c.Send(piece.owner, tagSpill,
			packRows(gradExt, piece.lo-(myLo-halo), piece.hi-piece.lo, w, n, ch, extH))
	}
	for _, piece := range haloPieces(p, myHi, myHi+halo) {
		c.Send(piece.owner, tagSpill,
			packRows(gradExt, piece.lo-(myLo-halo), piece.hi-piece.lo, w, n, ch, extH))
	}
	// Accumulate the spill arriving from every rank whose halo windows
	// cover part of my slab (the mirror of the sends above).
	for r := 0; r < p.Ranks; r++ {
		if r == rank {
			continue
		}
		for _, win := range [][2]int{
			{p.Ranges[r].Lo - halo, p.Ranges[r].Lo},
			{p.Ranges[r].Hi, p.Ranges[r].Hi + halo},
		} {
			lo := max(win[0], myLo)
			hi := min(win[1], myHi)
			if lo < hi {
				spill := c.Recv(r, tagSpill)
				addRows(grad, spill, lo-myLo, hi-lo, w, n, ch, lh)
			}
		}
	}
	return grad
}

// addRows accumulates a packRows buffer into rows [lo, lo+rows) of t.
func addRows(t *tensor.Tensor, buf []float32, lo, rows, w, n, ch, h int) {
	d := t.Data()
	idx := 0
	for b := 0; b < n; b++ {
		for c := 0; c < ch; c++ {
			off := (b*ch+c)*h*w + lo*w
			for i := 0; i < rows*w; i++ {
				d[off+i] += buf[idx]
				idx++
			}
		}
	}
}

// Layer is one stage of a model-parallel stack: a convolution followed by
// an optional ReLU. Point-wise activations need no halo traffic.
type Layer struct {
	Weights *tensor.Tensor // [Cout, Cin, KH, KW]
	Spec    ConvSpec
	ReLU    bool
}

// StackForward runs a sequence of layers over a rank's slab, exchanging
// halos before every convolution. It returns the final local slab.
func StackForward(c Comm, p *Plan, local *tensor.Tensor, layers []Layer) *tensor.Tensor {
	x := local
	for _, l := range layers {
		x = l.Spec.Forward(c, p, x, l.Weights)
		if l.ReLU {
			x = tensor.ReLU(x)
		}
	}
	return x
}

// HaloBytes returns the bytes one rank exchanges per forward pass of the
// stack (two directions, except at the group edges), for comparison with
// the data-parallel gradient all-reduce volume.
func HaloBytes(p *Plan, rank, n, w int, layers []Layer) int {
	neighbours := 2
	if rank == 0 {
		neighbours--
	}
	if rank == p.Ranks-1 {
		neighbours--
	}
	total := 0
	for _, l := range layers {
		ws := l.Weights.Shape()
		halo := HaloRadius(ws[2], l.Spec.Dilation)
		total += neighbours * n * ws[1] * halo * w * 4
	}
	return total
}
