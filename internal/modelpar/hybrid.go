package modelpar

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/tensor"
)

// HybridPlan composes the two parallelism axes the paper's Section VIII
// anticipates running together: ranks form a dataGroups × spatialWays grid.
// Each data group holds one model replica split spatially over its
// spatialWays ranks (halo exchange on NVLink-class links); gradients then
// average across data groups (all-reduce on the inter-node fabric), exactly
// the "model as well as data parallelism" execution the paper projects for
// temporally-evolved storm architectures.
//
// Rank layout: worldRank = dataGroup·spatialWays + spatialRank, so a data
// group's spatial ranks are contiguous — on a Summit-like fabric they share
// a node and halo traffic stays on NVLink.
type HybridPlan struct {
	Spatial     *Plan
	DataGroups  int
	SpatialWays int
}

// NewHybridPlan decomposes height h over spatialWays ranks within each of
// dataGroups replicas.
func NewHybridPlan(h, dataGroups, spatialWays int) (*HybridPlan, error) {
	if dataGroups < 1 {
		return nil, fmt.Errorf("modelpar: %d data groups", dataGroups)
	}
	sp, err := NewPlan(h, spatialWays)
	if err != nil {
		return nil, err
	}
	return &HybridPlan{Spatial: sp, DataGroups: dataGroups, SpatialWays: spatialWays}, nil
}

// Size returns the total rank count the plan expects.
func (hp *HybridPlan) Size() int { return hp.DataGroups * hp.SpatialWays }

// DataGroup returns the data-replica index of a world rank.
func (hp *HybridPlan) DataGroup(rank int) int { return rank / hp.SpatialWays }

// SpatialRank returns a world rank's position within its spatial group.
func (hp *HybridPlan) SpatialRank(rank int) int { return rank % hp.SpatialWays }

// SpatialComm returns the caller's spatial group: the ranks that jointly
// hold one model replica and exchange halos.
func (hp *HybridPlan) SpatialComm(c *mpi.Comm) Comm {
	hp.check(c)
	g := hp.DataGroup(c.Rank())
	ranks := make([]int, hp.SpatialWays)
	for i := range ranks {
		ranks[i] = g*hp.SpatialWays + i
	}
	return NewGroup(c, ranks)
}

// DataComm returns the caller's cross-replica group: the ranks holding the
// same spatial slab in every data group, across which gradients average.
func (hp *HybridPlan) DataComm(c *mpi.Comm) Comm {
	hp.check(c)
	s := hp.SpatialRank(c.Rank())
	ranks := make([]int, hp.DataGroups)
	for i := range ranks {
		ranks[i] = i*hp.SpatialWays + s
	}
	return NewGroup(c, ranks)
}

func (hp *HybridPlan) check(c *mpi.Comm) {
	if c.Size() != hp.Size() {
		panic(fmt.Sprintf("modelpar: world size %d != plan %d×%d",
			c.Size(), hp.DataGroups, hp.SpatialWays))
	}
}

// ConvForward computes the caller's output slab of its data group's sample.
// Halo traffic stays within the spatial group.
func (hp *HybridPlan) ConvForward(c *mpi.Comm, spec ConvSpec, localX, w *tensor.Tensor) *tensor.Tensor {
	return spec.Forward(hp.SpatialComm(c), hp.Spatial, localX, w)
}

// ConvBackward runs the full hybrid gradient step for one convolution:
// slab-local adjoints, weight-gradient completion across the spatial group
// (inside Backward), then averaging across data groups. Every rank returns
// its slab of the input gradient and the identical globally-averaged weight
// gradient — the data-parallel invariant, now per slab.
func (hp *HybridPlan) ConvBackward(c *mpi.Comm, spec ConvSpec, localX, w, gradOut *tensor.Tensor) (gradX, gradW *tensor.Tensor) {
	gradX, gradW = spec.Backward(hp.SpatialComm(c), hp.Spatial, localX, w, gradOut)
	hp.DataComm(c).Allreduce(gradW.Data())
	tensor.Scale(1/float32(hp.DataGroups), gradW.Data())
	return gradX, gradW
}
