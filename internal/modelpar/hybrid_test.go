package modelpar

import (
	"math/rand"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

func TestHybridPlanLayout(t *testing.T) {
	hp, err := NewHybridPlan(8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hp.Size() != 6 {
		t.Fatalf("size %d, want 6", hp.Size())
	}
	// Rank 5 = data group 2, spatial rank 1.
	if hp.DataGroup(5) != 2 || hp.SpatialRank(5) != 1 {
		t.Errorf("rank 5 placed at (%d,%d), want (2,1)", hp.DataGroup(5), hp.SpatialRank(5))
	}
	if hp.DataGroup(0) != 0 || hp.SpatialRank(0) != 0 {
		t.Errorf("rank 0 misplaced")
	}
}

func TestHybridPlanErrors(t *testing.T) {
	if _, err := NewHybridPlan(8, 0, 2); err == nil {
		t.Error("zero data groups should fail")
	}
	if _, err := NewHybridPlan(1, 2, 2); err == nil {
		t.Error("height below spatial ways should fail")
	}
}

// TestHybridForwardBackwardMatchesSerial is the full Section VIII story on
// 4 ranks: 2 data replicas × 2 spatial slabs. Each replica convolves its
// own sample; forward slabs must match the serial conv of that sample, the
// input-gradient slabs must match the serial adjoint, and the weight
// gradient on EVERY rank must equal the average of the two replicas' serial
// weight gradients.
func TestHybridForwardBackwardMatchesSerial(t *testing.T) {
	const h, w, cin, cout, kh = 10, 6, 2, 3, 3
	rng := rand.New(rand.NewSource(77))
	weights := tensor.RandNormal(tensor.Shape{cout, cin, kh, kh}, 0, 0.5, rng)
	samples := []*tensor.Tensor{
		tensor.RandNormal(tensor.NCHW(1, cin, h, w), 0, 1, rng),
		tensor.RandNormal(tensor.NCHW(1, cin, h, w), 0, 1, rng),
	}
	gradOuts := []*tensor.Tensor{
		tensor.RandNormal(tensor.NCHW(1, cout, h, w), 0, 1, rng),
		tensor.RandNormal(tensor.NCHW(1, cout, h, w), 0, 1, rng),
	}

	// Serial references per replica.
	conv := nn.NewConv2D(1, HaloRadius(kh, 1), 1)
	wantOut := make([]*tensor.Tensor, 2)
	wantGX := make([]*tensor.Tensor, 2)
	wantGW := tensor.New(weights.Shape())
	for g := 0; g < 2; g++ {
		wantOut[g] = conv.Forward([]*tensor.Tensor{samples[g], weights})
		ref := conv.Backward([]*tensor.Tensor{samples[g], weights}, wantOut[g], gradOuts[g])
		wantGX[g] = ref[0]
		for i, v := range ref[1].Data() {
			wantGW.Data()[i] += v / 2 // average over the 2 replicas
		}
	}

	hp, err := NewHybridPlan(h, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotOut := make([]*tensor.Tensor, 2)
	gotGX := make([]*tensor.Tensor, 2)
	gotGW := make([]*tensor.Tensor, 4)
	world := mpi.NewWorld(simnet.NewTwoLevelFabric(2, 2,
		simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
		simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9}))
	world.Run(func(c *mpi.Comm) {
		g := hp.DataGroup(c.Rank())
		sc := hp.SpatialComm(c)
		// The spatial root of each group scatters that group's sample.
		var in, gOut *tensor.Tensor
		if sc.Rank() == 0 {
			in, gOut = samples[g], gradOuts[g]
		}
		localX := Scatter(sc, hp.Spatial, 0, in)
		localGOut := Scatter(sc, hp.Spatial, 0, gOut)

		out := hp.ConvForward(c, ConvSpec{Dilation: 1}, localX, weights)
		gx, gw := hp.ConvBackward(c, ConvSpec{Dilation: 1}, localX, weights, localGOut)
		gotGW[c.Rank()] = gw

		if full := Gather(sc, hp.Spatial, 0, out); full != nil {
			gotOut[g] = full
		}
		if full := Gather(sc, hp.Spatial, 0, gx); full != nil {
			gotGX[g] = full
		}
	})

	for g := 0; g < 2; g++ {
		assertClose(t, wantOut[g], gotOut[g], 1e-5)
		assertClose(t, wantGX[g], gotGX[g], 1e-4)
	}
	for r, gw := range gotGW {
		if gw == nil {
			t.Fatalf("rank %d missing weight gradient", r)
		}
		assertClose(t, wantGW, gw, 1e-4)
	}
}

func TestHybridCommGroupsAreDisjointAndCorrect(t *testing.T) {
	hp, err := NewHybridPlan(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Allreduce over SpatialComm must sum within replicas only; over
	// DataComm within slots only. Encode rank identity and check sums.
	spatialSums := make([]float32, 4)
	dataSums := make([]float32, 4)
	world := mpi.NewWorld(simnet.Loopback(4))
	world.Run(func(c *mpi.Comm) {
		buf := []float32{float32(c.Rank() + 1)}
		hp.SpatialComm(c).Allreduce(buf)
		spatialSums[c.Rank()] = buf[0]
		buf = []float32{float32(c.Rank() + 1)}
		hp.DataComm(c).Allreduce(buf)
		dataSums[c.Rank()] = buf[0]
	})
	// Groups: {0,1} and {2,3} spatially; slots {0,2} and {1,3} across data.
	wantSpatial := []float32{3, 3, 7, 7}
	wantData := []float32{4, 6, 4, 6}
	for r := 0; r < 4; r++ {
		if spatialSums[r] != wantSpatial[r] {
			t.Errorf("rank %d spatial sum %v, want %v", r, spatialSums[r], wantSpatial[r])
		}
		if dataSums[r] != wantData[r] {
			t.Errorf("rank %d data sum %v, want %v", r, dataSums[r], wantData[r])
		}
	}
}

func TestHybridWorldSizeMismatchPanics(t *testing.T) {
	hp, err := NewHybridPlan(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(simnet.Loopback(3))
	panicked := make([]bool, 3)
	world.Run(func(c *mpi.Comm) {
		defer func() { panicked[c.Rank()] = recover() != nil }()
		hp.SpatialComm(c)
	})
	for r, ok := range panicked {
		if !ok {
			t.Errorf("rank %d: expected panic on world/plan size mismatch", r)
		}
	}
}

func TestNewGroupRejectsOutsider(t *testing.T) {
	world := mpi.NewWorld(simnet.Loopback(2))
	panicked := make([]bool, 2)
	world.Run(func(c *mpi.Comm) {
		defer func() { panicked[c.Rank()] = recover() != nil }()
		NewGroup(c, []int{c.Rank() ^ 1}) // a group not containing the caller
	})
	for r, ok := range panicked {
		if !ok {
			t.Errorf("rank %d: NewGroup accepted an outsider", r)
		}
	}
}
