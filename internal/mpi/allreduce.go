package mpi

import "fmt"

// Algorithm selects the all-reduce implementation.
type Algorithm int

const (
	// Ring is the bandwidth-optimal systolic ring (reduce-scatter +
	// allgather), the algorithm NCCL uses.
	Ring Algorithm = iota
	// RecursiveDoubling is the latency-optimal log₂(n) exchange pattern
	// common in MPI for small buffers.
	RecursiveDoubling
	// BinomialTree is reduce-to-root followed by broadcast — a simple
	// tree-based pattern MPI libraries use at scale.
	BinomialTree
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case RecursiveDoubling:
		return "recursive-doubling"
	case BinomialTree:
		return "binomial-tree"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Allreduce sums data elementwise across all ranks, in place, using the
// selected algorithm. All ranks must call it with equal-length buffers.
func (c *Comm) Allreduce(data []float32, alg Algorithm) {
	if c.Size() == 1 {
		return
	}
	switch alg {
	case Ring:
		c.ringAllreduce(data)
	case RecursiveDoubling:
		c.recursiveDoublingAllreduce(data)
	case BinomialTree:
		c.treeAllreduce(data)
	default:
		panic("mpi: unknown allreduce algorithm")
	}
}

// AllreduceGroup sums data across the given subgroup of ranks (all of whom
// must call with the same group slice, which must contain the caller).
// Implemented as a ring over the subgroup.
func (c *Comm) AllreduceGroup(data []float32, group []int) {
	if len(group) <= 1 {
		return
	}
	me := -1
	for i, r := range group {
		if r == c.rank {
			me = i
			break
		}
	}
	if me < 0 {
		panic("mpi: caller not in group")
	}
	c.ringOver(data, group, me)
}

func (c *Comm) ringAllreduce(data []float32) {
	group := make([]int, c.Size())
	for i := range group {
		group[i] = i
	}
	c.ringOver(data, group, c.rank)
}

// ringOver runs reduce-scatter + allgather over an arbitrary rank group.
// Chunks are the standard n-partition of the buffer; after n-1 reduce steps
// each member owns one fully reduced chunk, and n-1 gather steps circulate
// the results.
func (c *Comm) ringOver(data []float32, group []int, me int) {
	n := len(group)
	chunks := partition(len(data), n)
	next := group[(me+1)%n]
	prev := group[(me-1+n)%n]

	// Reduce-scatter: at step s, send chunk (me-s) and receive+accumulate
	// chunk (me-s-1).
	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		sc := chunks[sendIdx]
		c.Send(next, tagAllreduce+s, data[sc.lo:sc.hi])
		got := c.Recv(prev, tagAllreduce+s)
		rc := chunks[recvIdx]
		buf := data[rc.lo:rc.hi]
		for i := range buf {
			buf[i] += got[i]
		}
	}
	// Allgather: circulate the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := ((me+1-s)%n + n) % n
		recvIdx := ((me-s)%n + n) % n
		sc := chunks[sendIdx]
		c.Send(next, tagAllreduce+n+s, data[sc.lo:sc.hi])
		got := c.Recv(prev, tagAllreduce+n+s)
		rc := chunks[recvIdx]
		copy(data[rc.lo:rc.hi], got)
	}
}

// recursiveDoublingAllreduce handles power-of-two sizes directly and folds
// stragglers for other sizes (standard pre/post step).
func (c *Comm) recursiveDoublingAllreduce(data []float32) {
	n := c.Size()
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	rank := c.rank

	// Fold stragglers: ranks ≥ pow2 send to rank-pow2 partners.
	inGame := true
	if rank >= pow2 {
		c.Send(rank-pow2, tagAllreduce, data)
		inGame = false
	} else if rank < rem {
		got := c.Recv(rank+pow2, tagAllreduce)
		for i := range data {
			data[i] += got[i]
		}
	}

	if inGame {
		for dist := 1; dist < pow2; dist *= 2 {
			peer := rank ^ dist
			c.Send(peer, tagAllreduce+dist, data)
			got := c.Recv(peer, tagAllreduce+dist)
			for i := range data {
				data[i] += got[i]
			}
		}
	}

	// Unfold: partners get the final result.
	if rank >= pow2 {
		got := c.Recv(rank-pow2, tagAllreduce+1<<19)
		copy(data, got)
	} else if rank < rem {
		c.Send(rank+pow2, tagAllreduce+1<<19, data)
	}
}

// treeAllreduce reduces up a binomial tree to rank 0, then broadcasts.
func (c *Comm) treeAllreduce(data []float32) {
	n := c.Size()
	rank := c.rank
	// Reduce: receive from children (rank | bit), send to parent.
	for bit := 1; bit < n; bit *= 2 {
		if rank&bit != 0 {
			c.Send(rank&^bit, tagAllreduce+bit, data)
			break
		}
		child := rank | bit
		if child < n {
			got := c.Recv(child, tagAllreduce+bit)
			for i := range data {
				data[i] += got[i]
			}
		}
	}
	c.Bcast(0, data)
}

type span struct{ lo, hi int }

// partition splits length into n nearly equal contiguous spans.
func partition(length, n int) []span {
	spans := make([]span, n)
	base := length / n
	extra := length % n
	off := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < extra {
			sz++
		}
		spans[i] = span{off, off + sz}
		off += sz
	}
	return spans
}
