package mpi

import "fmt"

// Algorithm selects the all-reduce implementation.
type Algorithm int

const (
	// Ring is the bandwidth-optimal systolic ring (reduce-scatter +
	// allgather), the algorithm NCCL uses.
	Ring Algorithm = iota
	// RecursiveDoubling is the latency-optimal log₂(n) exchange pattern
	// common in MPI for small buffers.
	RecursiveDoubling
	// BinomialTree is reduce-to-root followed by broadcast — a simple
	// tree-based pattern MPI libraries use at scale.
	BinomialTree
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Ring:
		return "ring"
	case RecursiveDoubling:
		return "recursive-doubling"
	case BinomialTree:
		return "binomial-tree"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Allreduce sums data elementwise across all ranks, in place, using the
// selected algorithm. All ranks must call it with equal-length buffers.
func (c *Comm) Allreduce(data []float32, alg Algorithm) {
	if c.Size() == 1 {
		return
	}
	switch alg {
	case Ring:
		c.ringAllreduce(data)
	case RecursiveDoubling:
		c.recursiveDoublingAllreduce(data)
	case BinomialTree:
		c.treeAllreduce(data)
	default:
		panic("mpi: unknown allreduce algorithm")
	}
}

// AllreduceGroup sums data across the given subgroup of ranks (all of whom
// must call with the same group slice, which must contain the caller).
// Implemented as a ring over the subgroup.
func (c *Comm) AllreduceGroup(data []float32, group []int) {
	if len(group) <= 1 {
		return
	}
	me := -1
	for i, r := range group {
		if r == c.rank {
			me = i
			break
		}
	}
	if me < 0 {
		panic("mpi: caller not in group")
	}
	c.ringOverWire(data, group, me, WireFP32)
}

// The three algorithms are implemented once, wire-format-aware, in
// wire.go; at WireFP32 the wire helpers degenerate to plain pooled
// send/recv, so these are exact aliases of the historical FP32 paths.

func (c *Comm) ringAllreduce(data []float32) {
	c.ringOverWire(data, c.world.allRanks, c.rank, WireFP32)
}

func (c *Comm) recursiveDoublingAllreduce(data []float32) {
	c.recursiveDoublingWire(data, WireFP32)
}

func (c *Comm) treeAllreduce(data []float32) {
	c.treeAllreduceWire(data, WireFP32)
}

// ChunkSpan returns the bounds of the i-th of n nearly equal contiguous
// chunks of a buffer of the given length (the first length%n chunks get
// one extra element) — the shared partition of ring chunks and hybrid
// reducer shards.
func ChunkSpan(length, n, i int) (lo, hi int) {
	base := length / n
	extra := length % n
	lo = i*base + min(i, extra)
	hi = lo + base
	if i < extra {
		hi++
	}
	return lo, hi
}
