// Package mpi provides the message-passing substrate the paper's training
// stack assumes: ranks with point-to-point Send/Recv and the collective
// algorithms (ring, recursive doubling, binomial tree) that real MPI
// implementations choose between. Ranks run as goroutines in one process;
// payloads move for real; time advances on per-rank virtual clocks charged
// from a simnet.Fabric, so both correctness and at-scale timing behaviour
// are observable.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Tag namespaces for internal collectives sit high so user tags stay free.
const (
	tagAllreduce = 1 << 20
	tagBcast     = 2 << 20
	tagBarrier   = 3 << 20
	tagGather    = 4 << 20
)

type message struct {
	src, tag int
	payload  []float32
	meta     any     // optional control payload (used by horovod)
	arrive   float64 // virtual arrival time at dst
}

// mailbox is one rank's incoming message store with (src, tag) matching.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
	// notify, when set, receives a non-blocking token on every delivery so
	// a consumer can wait on a Go channel instead of the condvar (the
	// overlapped gradient exchange waits on local pushes and incoming
	// control messages at once).
	notify chan<- struct{}
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, m)
	n := mb.notify
	mb.mu.Unlock()
	mb.cond.Broadcast()
	if n != nil {
		select {
		case n <- struct{}{}:
		default: // a token is already pending; the drain loop will see us
		}
	}
}

// take blocks until a message from src with tag is present and removes it.
// src == AnySource matches any sender.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if (src == AnySource || m.src == src) && m.tag == tag {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// tryTake removes a matching message without blocking.
func (mb *mailbox) tryTake(src, tag int) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.msgs {
		if (src == AnySource || m.src == src) && m.tag == tag {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// AnySource matches any sending rank in Recv.
const AnySource = -1

// World is a communicator universe: N ranks over a fabric.
type World struct {
	fabric simnet.Fabric
	boxes  []*mailbox
	// pool recycles wire payload buffers: Send copies draw from it, and
	// receivers that are done with a payload hand it back with Release, so
	// steady-state collective traffic allocates nothing.
	pool *tensor.Pool
	// allRanks is the identity rank group, shared by full-world rings so
	// they need not rebuild it per collective.
	allRanks []int

	statsMu sync.Mutex
	// MessageCount and BytesSent are aggregate traffic statistics.
	messageCount int64
	bytesSent    int64
}

// NewWorld creates a world sized by the fabric.
func NewWorld(fabric simnet.Fabric) *World {
	n := fabric.Size()
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	allRanks := make([]int, n)
	for i := range allRanks {
		allRanks[i] = i
	}
	return &World{fabric: fabric, boxes: boxes, pool: tensor.NewPool(), allRanks: allRanks}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.fabric.Size() }

// Fabric returns the underlying fabric.
func (w *World) Fabric() simnet.Fabric { return w.fabric }

// MessageCount returns the total point-to-point messages sent so far.
func (w *World) MessageCount() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.messageCount
}

// BytesSent returns the total payload bytes sent so far.
func (w *World) BytesSent() int64 {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.bytesSent
}

// Run spawns one goroutine per rank executing body and waits for all to
// finish. It returns the maximum final virtual clock (the job's makespan).
func (w *World) Run(body func(c *Comm)) float64 {
	n := w.Size()
	clocks := make([]float64, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{world: w, rank: rank}
			body(c)
			clocks[rank] = c.clock
		}(r)
	}
	wg.Wait()
	maxClock := 0.0
	for _, t := range clocks {
		if t > maxClock {
			maxClock = t
		}
	}
	return maxClock
}

// Comm is one rank's endpoint. Not safe for concurrent use by multiple
// goroutines (like an MPI rank, it is single-threaded).
type Comm struct {
	world *World
	rank  int
	clock float64
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.Size() }

// Clock returns this rank's virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Advance adds local compute time to the rank's clock.
func (c *Comm) Advance(seconds float64) {
	if seconds < 0 {
		panic("mpi: negative time advance")
	}
	c.clock += seconds
}

// AdvanceTo raises the rank's clock to at least t (no-op if already past).
// Overlapped pipelines use it to model work that becomes available partway
// through a concurrent compute phase: the consumer's clock rides
// max(availability, message arrival) instead of summing the two phases.
func (c *Comm) AdvanceTo(t float64) {
	if t > c.clock {
		c.clock = t
	}
}

// Send transmits data to dst with the given tag. The payload is copied so
// the caller may reuse the buffer. Virtual send cost (injection overhead)
// is charged to the sender; wire time is charged to the receiver via the
// arrival timestamp.
func (c *Comm) Send(dst, tag int, data []float32) {
	c.sendInternal(dst, tag, data, nil)
}

// SendMeta transmits a control payload (no float data).
func (c *Comm) SendMeta(dst, tag int, meta any) {
	c.sendInternal(dst, tag, nil, meta)
}

// SendPayload transmits data and a control payload in one message — the
// scatter/gather pattern of the serving fleet, where a tile window (or a
// stitched keep-region) rides the wire together with the routing record
// that identifies it. The data is copied like Send; wire time is charged
// for the payload size.
func (c *Comm) SendPayload(dst, tag int, data []float32, meta any) {
	c.sendInternal(dst, tag, data, meta)
}

func (c *Comm) sendInternal(dst, tag int, data []float32, meta any) {
	if dst < 0 || dst >= c.world.Size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	var cp []float32
	if data != nil {
		cp = c.world.pool.GetF32(len(data))
		copy(cp, data)
	}
	bytes := len(data)*4 + 64 // payload plus a small header
	transfer := c.world.fabric.TransferSeconds(c.rank, dst, bytes)
	m := message{src: c.rank, tag: tag, payload: cp, meta: meta, arrive: c.clock + transfer}
	// Injection overhead: a fraction of the transfer is sender-occupied.
	c.clock += c.world.fabric.TransferSeconds(c.rank, dst, 0)

	w := c.world
	w.statsMu.Lock()
	w.messageCount++
	w.bytesSent += int64(bytes)
	w.statsMu.Unlock()

	w.boxes[dst].put(m)
}

// Recv blocks for a message from src (or AnySource) with tag, returning the
// payload. The receiver's clock advances to at least the arrival time.
func (c *Comm) Recv(src, tag int) []float32 {
	data, _ := c.RecvMeta(src, tag)
	return data
}

// RecvMeta is Recv returning both payload and control metadata.
func (c *Comm) RecvMeta(src, tag int) ([]float32, any) {
	m := c.world.boxes[c.rank].take(src, tag)
	if m.arrive > c.clock {
		c.clock = m.arrive
	}
	return m.payload, m.meta
}

// TryRecvMeta is RecvMeta without blocking: it returns ok=false when no
// matching message has been delivered yet.
func (c *Comm) TryRecvMeta(src, tag int) ([]float32, any, bool) {
	m, ok := c.world.boxes[c.rank].tryTake(src, tag)
	if !ok {
		return nil, nil, false
	}
	if m.arrive > c.clock {
		c.clock = m.arrive
	}
	return m.payload, m.meta, true
}

// SetNotify registers ch to receive a non-blocking token whenever a message
// is delivered to this rank, letting a consumer multiplex the mailbox with
// Go channels (see TryRecvMeta). Pass nil to unregister.
func (c *Comm) SetNotify(ch chan<- struct{}) {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	mb.notify = ch
	mb.mu.Unlock()
}

// GetBuf returns a scratch buffer from the world's wire pool (unspecified
// contents). Pair with Release.
func (c *Comm) GetBuf(n int) []float32 { return c.world.pool.GetF32(n) }

// Release returns a buffer obtained from Recv, RecvMeta, or GetBuf to the
// wire pool for reuse. Callers that retain a received payload simply skip
// Release and the buffer is garbage-collected as before; callers on hot
// collective paths release so steady-state traffic allocates nothing. The
// buffer must not be used afterwards.
func (c *Comm) Release(buf []float32) { c.world.pool.PutF32(buf) }

// Barrier synchronizes all ranks (dissemination algorithm) and aligns
// clocks to the latest participant.
func (c *Comm) Barrier() {
	n := c.Size()
	for dist := 1; dist < n; dist *= 2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		c.SendMeta(to, tagBarrier+dist, nil)
		c.RecvMeta(from, tagBarrier+dist)
	}
}

// Bcast broadcasts root's buffer to all ranks (binomial tree). Every rank
// passes its own buffer; non-roots receive into it.
func (c *Comm) Bcast(root int, data []float32) {
	n := c.Size()
	vrank := (c.rank - root + n) % n
	// Receive from parent (unless root).
	if vrank != 0 {
		// Parent clears the lowest set bit.
		parent := vrank & (vrank - 1)
		src := (parent + root) % n
		got := c.Recv(src, tagBcast)
		copy(data, got)
		c.Release(got)
	}
	// Forward to children: set bits above the lowest set bit of vrank.
	for bit := 1; bit < n; bit *= 2 {
		if vrank&(bit-1) == 0 && vrank&bit == 0 {
			child := vrank | bit
			if child < n {
				c.Send((child+root)%n, tagBcast, data)
			}
		}
	}
}

// Gather collects each rank's value at root; returns the slice at root
// (nil elsewhere). Linear algorithm (used only for small diagnostics).
func (c *Comm) Gather(root int, value float32) []float32 {
	if c.rank == root {
		out := make([]float32, c.Size())
		out[root] = value
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			got := c.Recv(i, tagGather)
			out[i] = got[0]
			c.Release(got)
		}
		return out
	}
	c.Send(root, tagGather, []float32{value})
	return nil
}
