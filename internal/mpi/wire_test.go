package mpi

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/simnet"
)

// runWire all-reduces per-rank random buffers at the given wire format and
// returns every rank's final buffer plus the exact FP64 sums.
func runWire(t *testing.T, n, length int, alg Algorithm, wire Wire) ([][]float32, []float64) {
	t.Helper()
	values := make([][]float32, n)
	exact := make([]float64, length)
	for r := 0; r < n; r++ {
		rng := rand.New(rand.NewSource(int64(r*77 + 3)))
		values[r] = make([]float32, length)
		for i := range values[r] {
			values[r][i] = rng.Float32()*2 - 1
			exact[i] += float64(values[r][i])
		}
	}
	out := make([][]float32, n)
	var mu sync.Mutex
	w := NewWorld(simnet.Loopback(n))
	w.Run(func(c *Comm) {
		buf := make([]float32, length)
		copy(buf, values[c.Rank()])
		c.AllreduceWire(buf, alg, wire)
		mu.Lock()
		out[c.Rank()] = buf
		mu.Unlock()
	})
	return out, exact
}

// TestWireFP16RanksBitIdentical is the data-parallel invariant under the
// FP16 wire: every rank must end with exactly the same bits (replicas that
// drift by one ULP diverge over thousands of steps).
func TestWireFP16RanksBitIdentical(t *testing.T) {
	for _, alg := range []Algorithm{Ring, RecursiveDoubling, BinomialTree} {
		for _, n := range []int{2, 3, 4, 8} {
			for _, length := range []int{1, 7, 64, 129} {
				out, _ := runWire(t, n, length, alg, WireFP16)
				ref := out[0]
				for r := 1; r < n; r++ {
					for i := range ref {
						if math.Float32bits(out[r][i]) != math.Float32bits(ref[i]) {
							t.Fatalf("%v n=%d len=%d: rank %d elem %d %v != rank 0 %v",
								alg, n, length, r, i, out[r][i], ref[i])
						}
					}
				}
			}
		}
	}
}

// TestWireFP16ErrorBounded bounds the FP16-wire error against the FP32
// wire: each wire hop rounds to binary16 (relative error ≤ 2⁻¹¹), and at
// most ~log₂(n)+1 roundings touch any partial, so the final error stays
// within a small multiple of the sum's magnitude.
func TestWireFP16ErrorBounded(t *testing.T) {
	for _, alg := range []Algorithm{Ring, RecursiveDoubling, BinomialTree} {
		const n, length = 8, 257
		half, exact := runWire(t, n, length, alg, WireFP16)
		full, _ := runWire(t, n, length, alg, WireFP32)
		var maxErrHalf, maxErrFull float64
		for i := 0; i < length; i++ {
			eh := math.Abs(float64(half[0][i]) - exact[i])
			ef := math.Abs(float64(full[0][i]) - exact[i])
			maxErrHalf = math.Max(maxErrHalf, eh)
			maxErrFull = math.Max(maxErrFull, ef)
		}
		// Sum magnitudes are O(n); FP16 relative step is 2⁻¹¹ per rounding,
		// ≤ log₂(n)+2 roundings: bound max abs error by n·(log₂n+2)·2⁻¹¹.
		bound := float64(n) * (math.Log2(float64(n)) + 2) / 2048
		t.Logf("%v: max abs err fp16-wire %.3e (fp32-wire %.3e, bound %.3e)",
			alg, maxErrHalf, maxErrFull, bound)
		if maxErrHalf > bound {
			t.Fatalf("%v: FP16 wire error %.3e exceeds bound %.3e", alg, maxErrHalf, bound)
		}
		if maxErrHalf < maxErrFull {
			continue // fine: fp16 happened to round favorably
		}
	}
}

// TestWireFP16HalvesBytes checks the point of the format: the fabric
// carries half the payload bytes (modulo per-message headers).
func TestWireFP16HalvesBytes(t *testing.T) {
	const n, length = 4, 1 << 12
	run := func(wire Wire) int64 {
		w := NewWorld(simnet.Loopback(n))
		w.Run(func(c *Comm) {
			buf := make([]float32, length)
			c.AllreduceWire(buf, Ring, wire)
		})
		return w.BytesSent()
	}
	full, half := run(WireFP32), run(WireFP16)
	ratio := float64(full) / float64(half)
	t.Logf("ring %d floats on %d ranks: fp32 wire %d B, fp16 wire %d B (%.2fx)",
		length, n, full, half, ratio)
	if ratio < 1.8 {
		t.Fatalf("FP16 wire moved %d bytes vs FP32 %d: expected ≈2x reduction", half, full)
	}
}

// TestWireGroupRing covers the subgroup ring (the hybrid reducer's
// cross-node phase) at both wire formats.
func TestWireGroupRing(t *testing.T) {
	const n, length = 6, 55
	group := []int{0, 2, 4} // even ranks reduce; odd ranks idle
	for _, wire := range []Wire{WireFP32, WireFP16} {
		out := make([][]float32, n)
		var mu sync.Mutex
		w := NewWorld(simnet.Loopback(n))
		w.Run(func(c *Comm) {
			buf := make([]float32, length)
			for i := range buf {
				buf[i] = float32(c.Rank() + 1)
			}
			inGroup := false
			for _, r := range group {
				if r == c.Rank() {
					inGroup = true
				}
			}
			if inGroup {
				c.AllreduceGroupWire(buf, group, wire)
			}
			mu.Lock()
			out[c.Rank()] = buf
			mu.Unlock()
		})
		want := float32(1 + 3 + 5) // ranks 0,2,4 contribute rank+1
		for _, r := range group {
			for i, v := range out[r] {
				if math.Abs(float64(v-want)) > 0.01 {
					t.Fatalf("wire %v rank %d elem %d = %v want %v", wire, r, i, v, want)
				}
				if math.Float32bits(v) != math.Float32bits(out[group[0]][i]) {
					t.Fatalf("wire %v: group members disagree bitwise at %d", wire, i)
				}
			}
		}
		// Idle ranks untouched.
		for i, v := range out[1] {
			if v != 2 {
				t.Fatalf("idle rank mutated at %d: %v", i, v)
			}
		}
	}
}
