package mpi

import "repro/internal/hpfloat"

// Wire selects the on-the-wire element format of a collective. The paper's
// exascale runs move FP16 gradients between nodes (halving the bytes the
// InfiniBand fabric carries) while every rank accumulates in FP32 — Wire
// reproduces that datapath: WireFP16 packs two binary16 values per 32-bit
// payload word on send (hpfloat.ToHalf semantics) and unpacks into FP32
// accumulation on receive.
type Wire int

const (
	// WireFP32 sends gradients at full width (the default).
	WireFP32 Wire = iota
	// WireFP16 rounds to binary16 on send and accumulates in FP32 on
	// receive, halving wire bytes at a bounded precision cost.
	WireFP16
)

// String names the wire format.
func (w Wire) String() string {
	if w == WireFP16 {
		return "fp16"
	}
	return "fp32"
}

// BytesPerElem returns the wire width of one gradient element.
func (w Wire) BytesPerElem() int {
	if w == WireFP16 {
		return 2
	}
	return 4
}

// SendWire transmits data at the given wire format. FP16 payloads are
// packed into half-length word buffers drawn from the wire pool, so the
// fabric (and BytesSent accounting) sees half the bytes.
func (c *Comm) SendWire(dst, tag int, data []float32, w Wire) {
	if w == WireFP32 {
		c.Send(dst, tag, data)
		return
	}
	words := c.GetBuf(hpfloat.WireWords(len(data)))
	hpfloat.PackWords(data, words)
	c.Send(dst, tag, words)
	c.Release(words)
}

// RecvWireAdd receives a wire-format payload and accumulates it into acc in
// FP32 (acc += received). The received buffer is released to the pool.
func (c *Comm) RecvWireAdd(src, tag int, acc []float32, w Wire) {
	got := c.Recv(src, tag)
	if w == WireFP32 {
		for i := range acc {
			acc[i] += got[i]
		}
	} else {
		hpfloat.UnpackAddWords(got, acc)
	}
	c.Release(got)
}

// RecvWireCopy receives a wire-format payload into dst, overwriting. The
// received buffer is released to the pool.
func (c *Comm) RecvWireCopy(src, tag int, dst []float32, w Wire) {
	got := c.Recv(src, tag)
	if w == WireFP32 {
		copy(dst, got)
	} else {
		hpfloat.UnpackWords(got, dst)
	}
	c.Release(got)
}

// roundTrip rounds data through the wire format in place. Algorithms that
// must leave every rank with bit-identical buffers round their local
// contribution exactly as the wire would before combining, so a rank's own
// value never differs from what its peers received.
func roundTrip(data []float32, w Wire) {
	if w == WireFP16 {
		hpfloat.RoundTrip(data)
	}
}

// AllreduceWire is Allreduce with an explicit wire format. All ranks end
// with bit-identical buffers (WireFP16 rounds the final values through
// binary16 so owners match receivers). The BinomialTree reduce phase and
// the final broadcast both honor the format.
func (c *Comm) AllreduceWire(data []float32, alg Algorithm, w Wire) {
	if c.Size() == 1 {
		return
	}
	if w == WireFP32 {
		c.Allreduce(data, alg)
		return
	}
	switch alg {
	case Ring:
		c.ringAllreduceWire(data, w)
	case RecursiveDoubling:
		c.recursiveDoublingWire(data, w)
	case BinomialTree:
		c.treeAllreduceWire(data, w)
	default:
		panic("mpi: unknown allreduce algorithm")
	}
}

// AllreduceGroupWire is AllreduceGroup (ring over a subgroup) with an
// explicit wire format.
func (c *Comm) AllreduceGroupWire(data []float32, group []int, w Wire) {
	if len(group) <= 1 {
		return
	}
	if w == WireFP32 {
		c.AllreduceGroup(data, group)
		return
	}
	me := -1
	for i, r := range group {
		if r == c.rank {
			me = i
			break
		}
	}
	if me < 0 {
		panic("mpi: caller not in group")
	}
	c.ringOverWire(data, group, me, w)
}

func (c *Comm) ringAllreduceWire(data []float32, w Wire) {
	c.ringOverWire(data, c.world.allRanks, c.rank, w)
}

// ringOverWire is ringOver with wire-format sends: reduce-scatter hops
// carry FP16-packed partial chunks that are accumulated in FP32; before the
// allgather, each chunk owner rounds its finished chunk through the wire so
// the value it keeps is bit-identical to the copies every other rank
// receives.
func (c *Comm) ringOverWire(data []float32, group []int, me int, w Wire) {
	n := len(group)
	next := group[(me+1)%n]
	prev := group[(me-1+n)%n]

	for s := 0; s < n-1; s++ {
		sendIdx := ((me-s)%n + n) % n
		recvIdx := ((me-s-1)%n + n) % n
		lo, hi := ChunkSpan(len(data), n, sendIdx)
		c.SendWire(next, tagAllreduce+s, data[lo:hi], w)
		lo, hi = ChunkSpan(len(data), n, recvIdx)
		c.RecvWireAdd(prev, tagAllreduce+s, data[lo:hi], w)
	}
	// This rank now owns chunk (me+1): round it to the wire before
	// circulating so every rank holds the same bits.
	lo, hi := ChunkSpan(len(data), n, (me+1)%n)
	roundTrip(data[lo:hi], w)
	for s := 0; s < n-1; s++ {
		sendIdx := ((me+1-s)%n + n) % n
		recvIdx := ((me-s)%n + n) % n
		lo, hi := ChunkSpan(len(data), n, sendIdx)
		c.SendWire(next, tagAllreduce+n+s, data[lo:hi], w)
		lo, hi = ChunkSpan(len(data), n, recvIdx)
		c.RecvWireCopy(prev, tagAllreduce+n+s, data[lo:hi], w)
	}
}

// recursiveDoublingWire exchanges FP16-packed partials over the full
// world.
func (c *Comm) recursiveDoublingWire(data []float32, w Wire) {
	c.RecursiveDoublingGroupWire(data, c.world.allRanks, c.rank, w, tagAllreduce)
}

// RecursiveDoublingGroupWire runs recursive doubling over an arbitrary
// rank group (me is the caller's index in group), with the standard
// fold/unfold for non-power-of-two sizes and wire-format sends on tags
// tagBase..tagBase+2·len(group). At WireFP16 every participant rounds its
// own partial through the wire before each exchange, so both peers compute
// half(a)+half(b) and stay bit-identical; a final round trip aligns the
// unfold copies with the in-game ranks. It is the cross-node phase of the
// hybrid reducer (disjoint concurrent groups are safe: messages match by
// sender).
func (c *Comm) RecursiveDoublingGroupWire(data []float32, group []int, me int, w Wire, tagBase int) {
	n := len(group)
	if n <= 1 {
		return
	}
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2

	inGame := true
	if me >= pow2 {
		c.SendWire(group[me-pow2], tagBase, data, w)
		inGame = false
	} else if me < rem {
		c.RecvWireAdd(group[me+pow2], tagBase, data, w)
	}

	if inGame {
		for dist := 1; dist < pow2; dist *= 2 {
			peer := me ^ dist
			roundTrip(data, w)
			c.SendWire(group[peer], tagBase+dist, data, w)
			c.RecvWireAdd(group[peer], tagBase+dist, data, w)
		}
		roundTrip(data, w)
	}

	if me >= pow2 {
		c.RecvWireCopy(group[me-pow2], tagBase+1<<19, data, w)
	} else if me < rem {
		c.SendWire(group[me+pow2], tagBase+1<<19, data, w)
	}
}

// treeAllreduceWire reduces up a binomial tree with wire-format sends and
// broadcasts the root's wire-rounded result back down.
func (c *Comm) treeAllreduceWire(data []float32, w Wire) {
	n := c.Size()
	rank := c.rank
	for bit := 1; bit < n; bit *= 2 {
		if rank&bit != 0 {
			c.SendWire(rank&^bit, tagAllreduce+bit, data, w)
			break
		}
		child := rank | bit
		if child < n {
			c.RecvWireAdd(child, tagAllreduce+bit, data, w)
		}
	}
	if rank == 0 {
		roundTrip(data, w)
	}
	// Wire-format binomial broadcast of the rounded result.
	vrank := rank
	if vrank != 0 {
		parent := vrank & (vrank - 1)
		c.RecvWireCopy(parent, tagBcast, data, w)
	}
	for bit := 1; bit < n; bit *= 2 {
		if vrank&(bit-1) == 0 && vrank&bit == 0 {
			child := vrank | bit
			if child < n {
				c.SendWire(child, tagBcast, data, w)
			}
		}
	}
}
