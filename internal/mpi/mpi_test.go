package mpi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/simnet"
)

func TestSendRecvRoundTrip(t *testing.T) {
	w := NewWorld(simnet.Loopback(2))
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1, 2, 3})
			got := c.Recv(1, 8)
			if got[0] != 9 {
				t.Errorf("rank 0 got %v", got)
			}
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 got %v", got)
			}
			c.Send(0, 8, []float32{9})
		}
	})
	if w.MessageCount() != 2 {
		t.Fatalf("messages = %d", w.MessageCount())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(simnet.Loopback(2))
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float32{1}
			c.Send(1, 1, buf)
			buf[0] = 99 // must not affect the in-flight message
			c.Send(1, 2, buf)
		} else {
			if got := c.Recv(0, 1); got[0] != 1 {
				t.Errorf("payload aliased: %v", got)
			}
			c.Recv(0, 2)
		}
	})
}

func TestTagAndSourceMatching(t *testing.T) {
	w := NewWorld(simnet.Loopback(3))
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 5, []float32{10})
		case 1:
			c.Send(2, 5, []float32{20})
		case 2:
			// Receive specifically from rank 1 first, then rank 0.
			if got := c.Recv(1, 5); got[0] != 20 {
				t.Errorf("src matching failed: %v", got)
			}
			if got := c.Recv(0, 5); got[0] != 10 {
				t.Errorf("src matching failed: %v", got)
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	w := NewWorld(simnet.Loopback(3))
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			sum := float32(0)
			for i := 0; i < 2; i++ {
				got := c.Recv(AnySource, 1)
				sum += got[0]
			}
			if sum != 30 {
				t.Errorf("sum = %g", sum)
			}
		} else {
			c.Send(0, 1, []float32{float32(c.Rank() * 10)})
		}
	})
}

func TestVirtualClockAdvances(t *testing.T) {
	fabric := simnet.NewTwoLevelFabric(2, 1,
		simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 1e9},
		simnet.LinkSpec{LatencySec: 1e-3, BytesPerSec: 1e6}) // slow inter link
	w := NewWorld(fabric)
	makespan := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Advance(0.5)
			c.Send(1, 1, make([]float32, 250)) // 1064 bytes @1e6 B/s ≈ 1.06ms
		} else {
			c.Recv(0, 1)
			// Receiver clock ≥ sender clock (0.5) + latency + transfer.
			if c.Clock() < 0.5+1e-3 {
				t.Errorf("receiver clock %g too small", c.Clock())
			}
		}
	})
	if makespan < 0.5 {
		t.Fatalf("makespan %g", makespan)
	}
}

func TestBarrierAlignsClocks(t *testing.T) {
	w := NewWorld(simnet.Loopback(4))
	w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			c.Advance(1.0) // slowpoke
		}
		c.Barrier()
		if c.Clock() < 1.0 {
			t.Errorf("rank %d clock %g below barrier time", c.Rank(), c.Clock())
		}
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root += 2 {
			w := NewWorld(simnet.Loopback(n))
			w.Run(func(c *Comm) {
				buf := make([]float32, 4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float32(i + 100)
					}
				}
				c.Bcast(root, buf)
				for i := range buf {
					if buf[i] != float32(i+100) {
						t.Errorf("n=%d root=%d rank=%d buf=%v", n, root, c.Rank(), buf)
						return
					}
				}
			})
		}
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(simnet.Loopback(5))
	w.Run(func(c *Comm) {
		got := c.Gather(2, float32(c.Rank()*c.Rank()))
		if c.Rank() == 2 {
			for i, v := range got {
				if v != float32(i*i) {
					t.Errorf("gather[%d] = %g", i, v)
				}
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func testAllreduceCorrect(t *testing.T, alg Algorithm, n, length int) {
	t.Helper()
	// Each rank contributes rank-dependent values; expected sum is known.
	expected := make([]float32, length)
	inputs := make([][]float32, n)
	rng := rand.New(rand.NewSource(int64(n*1000 + length)))
	for r := 0; r < n; r++ {
		inputs[r] = make([]float32, length)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.Intn(100)) / 4
			expected[i] += inputs[r][i]
		}
	}
	w := NewWorld(simnet.Loopback(n))
	w.Run(func(c *Comm) {
		buf := make([]float32, length)
		copy(buf, inputs[c.Rank()])
		c.Allreduce(buf, alg)
		for i := range buf {
			if math.Abs(float64(buf[i]-expected[i])) > 1e-3 {
				t.Errorf("%v n=%d len=%d rank=%d elem %d: %g want %g",
					alg, n, length, c.Rank(), i, buf[i], expected[i])
				return
			}
		}
	})
}

func TestRingAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 7} {
		for _, l := range []int{1, 5, 64, 1000} {
			testAllreduceCorrect(t, Ring, n, l)
		}
	}
}

func TestRecursiveDoublingAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 9} {
		testAllreduceCorrect(t, RecursiveDoubling, n, 100)
	}
}

func TestTreeAllreduce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 11} {
		testAllreduceCorrect(t, BinomialTree, n, 100)
	}
}

func TestAllreduceSingleRankNoop(t *testing.T) {
	w := NewWorld(simnet.Loopback(1))
	w.Run(func(c *Comm) {
		buf := []float32{42}
		c.Allreduce(buf, Ring)
		if buf[0] != 42 {
			t.Errorf("single-rank allreduce changed data")
		}
	})
	if w.MessageCount() != 0 {
		t.Fatal("single-rank allreduce sent messages")
	}
}

func TestAllreduceGroup(t *testing.T) {
	// Ranks {1,3,5} reduce among themselves; others idle.
	group := []int{1, 3, 5}
	w := NewWorld(simnet.Loopback(6))
	w.Run(func(c *Comm) {
		in := group[0] == c.Rank() || group[1] == c.Rank() || group[2] == c.Rank()
		if !in {
			return
		}
		buf := []float32{float32(c.Rank()), 1}
		c.AllreduceGroup(buf, group)
		if buf[0] != 9 || buf[1] != 3 {
			t.Errorf("rank %d group allreduce = %v", c.Rank(), buf)
		}
	})
}

func TestRingBandwidthOptimality(t *testing.T) {
	// For large buffers the ring moves ~2·(n-1)/n · bytes per rank,
	// regardless of n — the property that makes it bandwidth-optimal.
	// Verify traffic accounting matches that within overheads.
	const length = 9000
	for _, n := range []int{2, 4, 8} {
		w := NewWorld(simnet.Loopback(n))
		w.Run(func(c *Comm) {
			buf := make([]float32, length)
			c.Allreduce(buf, Ring)
		})
		perRank := float64(w.BytesSent()) / float64(n)
		ideal := 2 * float64(n-1) / float64(n) * length * 4
		if perRank < ideal || perRank > ideal*1.15 {
			t.Fatalf("n=%d per-rank traffic %.0f, ideal %.0f", n, perRank, ideal)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if Ring.String() != "ring" || RecursiveDoubling.String() != "recursive-doubling" ||
		BinomialTree.String() != "binomial-tree" {
		t.Fatal("algorithm names wrong")
	}
}

func TestPartitionProperty(t *testing.T) {
	for length := 0; length < 50; length++ {
		for n := 1; n <= 8; n++ {
			total := 0
			prev := 0
			for i := 0; i < n; i++ {
				lo, hi := ChunkSpan(length, n, i)
				if lo != prev {
					t.Fatalf("gap in ChunkSpan(%d,%d,%d)", length, n, i)
				}
				if hi < lo {
					t.Fatalf("negative span in ChunkSpan(%d,%d,%d)", length, n, i)
				}
				total += hi - lo
				prev = hi
			}
			if total != length {
				t.Fatalf("ChunkSpan(%d,%d) covers %d", length, n, total)
			}
		}
	}
}
