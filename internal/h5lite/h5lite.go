// Package h5lite is a minimal chunked scientific-data container standing in
// for HDF5. It stores fixed-shape multichannel samples (fields + label
// plane) in a flat binary layout with random access by sample index.
//
// Crucially for the reproduction, it also models the property of the HDF5
// C library that shaped the paper's input pipeline (Section V-A2): all
// operations through one library instance serialize on a global lock, so
// multi-threaded readers sharing an instance gain nothing, while separate
// instances (the paper's multiprocessing workers) read in parallel. The
// per-read DecodeDelay makes that contention observable in miniature.
package h5lite

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

const (
	magic   = 0x48354C54 // "H5LT"
	version = 1
)

// Meta describes the fixed shape of every sample in a file.
type Meta struct {
	Channels, Height, Width int
}

func (m Meta) fieldsLen() int { return m.Channels * m.Height * m.Width }
func (m Meta) labelsLen() int { return m.Height * m.Width }
func (m Meta) sampleBytes() int64 {
	return int64(m.fieldsLen()+m.labelsLen()) * 4
}

// Library models one instance of the (serializing) I/O library. A process
// in the paper's pipeline corresponds to one Library; threads within a
// process share one.
type Library struct {
	mu          sync.Mutex
	DecodeDelay time.Duration // simulated per-sample decode cost under the lock

	serializedNanos atomic.Int64
	reads           atomic.Int64
}

// NewLibrary returns a library instance with the given simulated decode
// cost (0 for pure-I/O tests).
func NewLibrary(decodeDelay time.Duration) *Library {
	return &Library{DecodeDelay: decodeDelay}
}

// SerializedTime returns the cumulative time spent holding the library
// lock in reads.
func (l *Library) SerializedTime() time.Duration {
	return time.Duration(l.serializedNanos.Load())
}

// Reads returns the number of ReadSample calls through this library.
func (l *Library) Reads() int64 { return l.reads.Load() }

type header struct {
	Magic, Version                 uint32
	Channels, Height, Width, Count uint32
}

const headerBytes = 24

// Writer appends samples to a new file.
type Writer struct {
	lib   *Library
	f     *os.File
	meta  Meta
	count uint32
}

// Create opens a new file for writing through this library instance.
func (l *Library) Create(path string, meta Meta) (*Writer, error) {
	if meta.Channels < 1 || meta.Height < 1 || meta.Width < 1 {
		return nil, fmt.Errorf("h5lite: invalid meta %+v", meta)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{lib: l, f: f, meta: meta}
	if err := w.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *Writer) writeHeader() error {
	h := header{
		Magic: magic, Version: version,
		Channels: uint32(w.meta.Channels),
		Height:   uint32(w.meta.Height),
		Width:    uint32(w.meta.Width),
		Count:    w.count,
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return binary.Write(w.f, binary.LittleEndian, &h)
}

// Append writes one sample (fields then labels, float32 little-endian).
func (w *Writer) Append(fields, labels []float32) error {
	if len(fields) != w.meta.fieldsLen() || len(labels) != w.meta.labelsLen() {
		return fmt.Errorf("h5lite: sample size mismatch: %d/%d fields, %d/%d labels",
			len(fields), w.meta.fieldsLen(), len(labels), w.meta.labelsLen())
	}
	w.lib.mu.Lock()
	defer w.lib.mu.Unlock()
	off := headerBytes + int64(w.count)*w.meta.sampleBytes()
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	if err := binary.Write(w.f, binary.LittleEndian, fields); err != nil {
		return err
	}
	if err := binary.Write(w.f, binary.LittleEndian, labels); err != nil {
		return err
	}
	w.count++
	return nil
}

// Close finalizes the header and closes the file.
func (w *Writer) Close() error {
	if err := w.writeHeader(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// File reads samples from an existing file through a library instance.
type File struct {
	lib   *Library
	f     *os.File
	meta  Meta
	count int
}

// Open opens a file for reading through this library instance.
func (l *Library) Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var h header
	if err := binary.Read(f, binary.LittleEndian, &h); err != nil {
		f.Close()
		return nil, fmt.Errorf("h5lite: reading header: %w", err)
	}
	if h.Magic != magic {
		f.Close()
		return nil, fmt.Errorf("h5lite: bad magic %#x", h.Magic)
	}
	if h.Version != version {
		f.Close()
		return nil, fmt.Errorf("h5lite: unsupported version %d", h.Version)
	}
	return &File{
		lib:   l,
		f:     f,
		meta:  Meta{Channels: int(h.Channels), Height: int(h.Height), Width: int(h.Width)},
		count: int(h.Count),
	}, nil
}

// Meta returns the sample shape.
func (f *File) Meta() Meta { return f.meta }

// NumSamples returns the sample count.
func (f *File) NumSamples() int { return f.count }

// ReadSample reads sample i. The entire read (seek, I/O, decode) holds the
// library lock — the HDF5 serialization the paper worked around with
// multiprocessing.
func (f *File) ReadSample(i int) (fields, labels []float32, err error) {
	if i < 0 || i >= f.count {
		return nil, nil, fmt.Errorf("h5lite: sample %d out of range [0,%d)", i, f.count)
	}
	f.lib.mu.Lock()
	start := time.Now()
	defer func() {
		f.lib.serializedNanos.Add(int64(time.Since(start)))
		f.lib.reads.Add(1)
		f.lib.mu.Unlock()
	}()

	off := headerBytes + int64(i)*f.meta.sampleBytes()
	if _, err := f.f.Seek(off, io.SeekStart); err != nil {
		return nil, nil, err
	}
	fields = make([]float32, f.meta.fieldsLen())
	labels = make([]float32, f.meta.labelsLen())
	if err := binary.Read(f.f, binary.LittleEndian, fields); err != nil {
		return nil, nil, err
	}
	if err := binary.Read(f.f, binary.LittleEndian, labels); err != nil {
		return nil, nil, err
	}
	if f.lib.DecodeDelay > 0 {
		time.Sleep(f.lib.DecodeDelay)
	}
	return fields, labels, nil
}

// Close closes the file.
func (f *File) Close() error { return f.f.Close() }
