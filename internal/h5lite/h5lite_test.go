package h5lite

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func writeTestFile(t *testing.T, lib *Library, n int) (string, Meta, [][]float32) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "test.h5l")
	meta := Meta{Channels: 3, Height: 4, Width: 5}
	w, err := lib.Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var all [][]float32
	for i := 0; i < n; i++ {
		fields := make([]float32, meta.fieldsLen())
		labels := make([]float32, meta.labelsLen())
		for j := range fields {
			fields[j] = rng.Float32()
		}
		for j := range labels {
			labels[j] = float32(rng.Intn(3))
		}
		if err := w.Append(fields, labels); err != nil {
			t.Fatal(err)
		}
		all = append(all, append(append([]float32{}, fields...), labels...))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, meta, all
}

func TestWriteReadRoundTrip(t *testing.T) {
	lib := NewLibrary(0)
	path, meta, all := writeTestFile(t, lib, 7)
	f, err := lib.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumSamples() != 7 {
		t.Fatalf("count = %d", f.NumSamples())
	}
	if f.Meta() != meta {
		t.Fatalf("meta = %+v", f.Meta())
	}
	// Random-access reads in scrambled order.
	for _, i := range []int{3, 0, 6, 1, 5, 2, 4} {
		fields, labels, err := f.ReadSample(i)
		if err != nil {
			t.Fatal(err)
		}
		want := all[i]
		for j, v := range fields {
			if v != want[j] {
				t.Fatalf("sample %d field %d mismatch", i, j)
			}
		}
		for j, v := range labels {
			if v != want[meta.fieldsLen()+j] {
				t.Fatalf("sample %d label %d mismatch", i, j)
			}
		}
	}
	if f.lib.Reads() != 7 {
		t.Fatalf("read count = %d", f.lib.Reads())
	}
}

func TestReadErrors(t *testing.T) {
	lib := NewLibrary(0)
	path, _, _ := writeTestFile(t, lib, 2)
	f, err := lib.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := f.ReadSample(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, _, err := f.ReadSample(2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	lib := NewLibrary(0)
	if _, err := lib.Open(filepath.Join(t.TempDir(), "missing.h5l")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := lib.Create(t.TempDir()+"/x.h5l", Meta{}); err == nil {
		t.Fatal("invalid meta accepted")
	}
}

func TestAppendSizeValidation(t *testing.T) {
	lib := NewLibrary(0)
	w, err := lib.Create(filepath.Join(t.TempDir(), "v.h5l"), Meta{Channels: 1, Height: 2, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]float32, 3), make([]float32, 4)); err == nil {
		t.Fatal("short fields accepted")
	}
	if err := w.Append(make([]float32, 4), make([]float32, 5)); err == nil {
		t.Fatal("long labels accepted")
	}
}

func TestSharedLibrarySerializesReads(t *testing.T) {
	// 4 goroutines, 3 reads each, 2ms decode under a shared library:
	// wall time must be ≥ 12 × 2ms (serialized). Separate libraries
	// overlap their sleeps, finishing in roughly 3 × 2ms.
	const delay = 2 * time.Millisecond
	const workers, readsEach = 4, 3

	shared := NewLibrary(delay)
	path, _, _ := writeTestFile(t, shared, workers*readsEach)

	elapsedShared := runReaders(t, path, readsEach, func(int) *Library { return shared })
	perLib := runReaders(t, path, readsEach, func(int) *Library { return NewLibrary(delay) })

	t.Logf("shared library: %v, per-worker libraries: %v", elapsedShared, perLib)
	if elapsedShared < time.Duration(workers*readsEach)*delay {
		t.Fatalf("shared library finished in %v — reads were not serialized", elapsedShared)
	}
	if perLib*2 > elapsedShared {
		t.Fatalf("separate libraries (%v) not meaningfully faster than shared (%v)",
			perLib, elapsedShared)
	}
}

func runReaders(t *testing.T, path string, readsEach int, libFor func(worker int) *Library) time.Duration {
	t.Helper()
	const workers = 4
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lib := libFor(w)
		f, err := lib.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(worker int, f *File) {
			defer wg.Done()
			defer f.Close()
			for i := 0; i < readsEach; i++ {
				if _, _, err := f.ReadSample(worker*readsEach + i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w, f)
	}
	wg.Wait()
	return time.Since(start)
}

func TestSerializedTimeAccounting(t *testing.T) {
	lib := NewLibrary(time.Millisecond)
	path, _, _ := writeTestFile(t, lib, 3)
	f, err := lib.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := f.ReadSample(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := lib.SerializedTime(); got < 3*time.Millisecond {
		t.Fatalf("serialized time %v below 3ms", got)
	}
}
