package h5lite

import (
	"os"
	"path/filepath"
	"testing"
)

// Failure injection: corrupted and truncated files must produce errors,
// never panics or silent garbage.

func TestOpenCorruptMagic(t *testing.T) {
	lib := NewLibrary(0)
	path, _, _ := writeTestFile(t, lib, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.h5l")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Open(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

func TestOpenWrongVersion(t *testing.T) {
	lib := NewLibrary(0)
	path, _, _ := writeTestFile(t, lib, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99 // version field
	bad := filepath.Join(t.TempDir(), "ver.h5l")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Open(bad); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestOpenTruncatedHeader(t *testing.T) {
	lib := NewLibrary(0)
	bad := filepath.Join(t.TempDir(), "short.h5l")
	if err := os.WriteFile(bad, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Open(bad); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReadTruncatedBody(t *testing.T) {
	lib := NewLibrary(0)
	path, _, _ := writeTestFile(t, lib, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the header (count says 3 samples) but drop most of the body.
	bad := filepath.Join(t.TempDir(), "trunc.h5l")
	if err := os.WriteFile(bad, data[:headerBytes+10], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := lib.Open(bad)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := f.ReadSample(2); err == nil {
		t.Fatal("read past truncation succeeded")
	}
}

func TestConcurrentReadersSeparateSamples(t *testing.T) {
	// Stress the lock: many goroutines reading random samples through one
	// library must each get exactly their sample's contents.
	lib := NewLibrary(0)
	path, _, all := writeTestFile(t, lib, 8)
	f, err := lib.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan error, 32)
	for g := 0; g < 32; g++ {
		go func(g int) {
			i := g % 8
			fields, _, err := f.ReadSample(i)
			if err != nil {
				done <- err
				return
			}
			for j, v := range fields {
				if v != all[i][j] {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 32; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if f.lib.Reads() < 32 {
		t.Fatalf("read accounting lost reads: %d", f.lib.Reads())
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "h5lite test: payload mismatch under concurrency" }
