//go:build !amd64

package tensor

// Portable stubs: every dispatch wrapper declines, so all kernels run the
// scalar reference paths. KernelISA on these platforms only ever resolves
// to ISAScalar (simd.HasAVX2 is false off amd64).

func simdGemmTile(kc int, ap, bp []float32, alpha, beta float32, mode int, c []float32, ldc int) {
	panic("tensor: simdGemmTile called without AVX2 support")
}

func simdGemmTileAcc(kc int, ap, bp []float32, acc *[avxMR * avxNR]float32) {
	panic("tensor: simdGemmTileAcc called without AVX2 support")
}

func simdInt8AxpyQuad(av *[4]int32, b0, b1, b2, b3 []int8, acc []int32) int { return 0 }

func simdAxpy(alpha float32, x, y []float32) bool { return false }

func simdScale(alpha float32, x []float32) bool { return false }

func simdScaleAllFinite(alpha float32, x []float32) (ok, handled bool) { return false, false }

func simdDot(x, y []float32) (float64, bool) { return 0, false }

func simdTranspose(src []float32, rows, cols int, dst []float32) bool { return false }

func fmaPeakProbeRun(iters int) bool { return false }
