package tensor

// The AVX2 blocked GEMM path: same GotoBLAS/BLIS decomposition as
// gemmBlocked, with the 6×16 assembly micro-kernel (gemm_avx2_amd64.s) in
// the inner position and per-worker packed-panel reuse through
// parallelForID. This file is portable Go — on non-amd64 builds
// ActiveISA() never resolves to ISAAVX2, so the entry point is
// unreachable (the simdGemmTile stubs panic to keep that invariant loud).
//
// Epilogue modes, computed once per K block in Go so the assembly never
// branches on float comparisons:
//
//	mode 0 — not the first K block: C += alpha*acc
//	mode 1 — first block, beta == 0: C  = alpha*acc (C never read)
//	mode 2 — first block, beta != 0: C  = beta*C + alpha*acc
//
// Both the assembly epilogue and the Go edge epilogue use the same
// mul-then-add rounding, so full tiles and masked edge tiles are
// bit-consistent with each other; only the K-loop FMA chains reassociate
// relative to the scalar kernel (≤4·ULP per accumulation chain).
func gemmBlockedAVX2(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	nc := min(avxNC, n)
	kc := min(avxKC, k)
	mc := min(avxMC, m)

	bPanelMax := ((nc + avxNR - 1) / avxNR) * avxNR * kc
	aPanelMax := ((mc + avxMR - 1) / avxMR) * avxMR * kc
	mcBlocks := (m + mc - 1) / mc

	bPanelPtr := getPanel(bPanelMax)
	bPanel := *bPanelPtr
	defer putPanel(bPanelPtr)

	// The fan-out state travels by value: a closure capturing it would
	// force a heap allocation per blocked call even on the serial path
	// (escape analysis is static), and small-but-blocked GEMMs are the
	// steady state of the tiny training nets — the executor's zero-alloc
	// contract covers them.
	st := avxGemmBlock{
		transA: transA, alpha: alpha, beta: beta,
		a: a, lda: lda, c: c, ldc: ldc,
		m: m, mc: mc, aPanelMax: aPanelMax, bPanel: bPanel,
	}
	serial := Parallelism() <= 1 || mcBlocks <= 1
	for jc := 0; jc < n; jc += nc {
		st.jc = jc
		st.ncEff = min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			st.pc = pc
			st.kcEff = min(kc, k-pc)
			packB16(transB, b, ldb, jc, st.ncEff, pc, st.kcEff, bPanel)
			st.mode = 0
			if pc == 0 {
				if beta == 0 {
					st.mode = 1
				} else {
					st.mode = 2
				}
			}
			if serial {
				st.run(0, mcBlocks)
			} else {
				st.runParallel(mcBlocks)
			}
		}
	}
}

// avxGemmBlock is one K-block's worth of blocked-GEMM state, shared by the
// M-block fan-out. Methods take it by value so the serial path stays
// allocation-free; only runParallel's closure copies it to the heap.
type avxGemmBlock struct {
	transA      bool
	mode        int
	alpha, beta float32
	a           []float32
	lda         int
	c           []float32
	ldc         int
	m, mc       int
	jc, ncEff   int
	pc, kcEff   int
	aPanelMax   int
	bPanel      []float32
}

// runParallel fans the M blocks out over the worker pool. parallelForID
// keeps chunk w on pool worker w every K iteration, so a worker's C rows
// (and its pooled A panel, via the per-P free list) stay cache-local
// across the whole K loop.
func (g avxGemmBlock) runParallel(mcBlocks int) {
	parallelForID(mcBlocks, 1, func(id, blo, bhi int) { g.run(blo, bhi) })
}

// run packs and multiplies M blocks [blo, bhi).
func (g avxGemmBlock) run(blo, bhi int) {
	aPanelPtr := getPanel(g.aPanelMax)
	aPanel := *aPanelPtr
	defer putPanel(aPanelPtr)
	var acc [avxMR * avxNR]float32
	for blk := blo; blk < bhi; blk++ {
		i0 := blk * g.mc
		mcEff := min(g.mc, g.m-i0)
		packA6(g.transA, g.a, g.lda, i0, mcEff, g.pc, g.kcEff, aPanel)
		for jr := 0; jr < g.ncEff; jr += avxNR {
			bStrip := g.bPanel[(jr/avxNR)*g.kcEff*avxNR:]
			nEdge := min(avxNR, g.ncEff-jr)
			for ir := 0; ir < mcEff; ir += avxMR {
				aStrip := aPanel[(ir/avxMR)*g.kcEff*avxMR:]
				mEdge := min(avxMR, mcEff-ir)
				cTile := g.c[(i0+ir)*g.ldc+g.jc+jr:]
				if mEdge == avxMR && nEdge == avxNR {
					simdGemmTile(g.kcEff, aStrip, bStrip, g.alpha, g.beta, g.mode, cTile, g.ldc)
				} else {
					// Masked-edge variant: packing zero-padded the panels, so
					// the dead lanes hold zeros and the epilogue simply
					// writes the live region.
					simdGemmTileAcc(g.kcEff, aStrip, bStrip, &acc)
					gemmEdgeAVX2(&acc, g.alpha, g.beta, g.mode, cTile, g.ldc, mEdge, nEdge)
				}
			}
		}
	}
}

// gemmEdgeAVX2 applies the alpha/beta epilogue to the live mEdge×nEdge
// corner of a raw 6×16 accumulator — the same mul-then-add rounding as the
// assembly epilogue rows.
func gemmEdgeAVX2(acc *[avxMR * avxNR]float32, alpha, beta float32, mode int,
	c []float32, ldc, mEdge, nEdge int) {
	for i := 0; i < mEdge; i++ {
		ci := c[i*ldc : i*ldc+nEdge]
		accRow := acc[i*avxNR : i*avxNR+nEdge]
		switch mode {
		case 0:
			for j := range ci {
				ci[j] += alpha * accRow[j]
			}
		case 1:
			for j := range ci {
				ci[j] = alpha * accRow[j]
			}
		default:
			for j := range ci {
				ci[j] = beta*ci[j] + alpha*accRow[j]
			}
		}
	}
}

// packA6 packs rows [i0, i0+mcEff) × cols [pc, pc+kcEff) of op(A) into
// 6-row strips: dst[strip*kcEff*6 + p*6 + i], zero-padding edge rows. The
// transposed case copies whole strips with copy() (contiguous source →
// memmove's vector loop); the row-major case walks rows and scatters with
// stride 6.
func packA6(transA bool, a []float32, lda, i0, mcEff, pc, kcEff int, dst []float32) {
	for s := 0; s*avxMR < mcEff; s++ {
		base := s * kcEff * avxMR
		rows := min(avxMR, mcEff-s*avxMR)
		if transA {
			// op(A)[i][p] = a[p*lda + i] (A stored k×m): one contiguous
			// 6-float copy per K step covers the whole strip.
			for p := 0; p < kcEff; p++ {
				src := a[(pc+p)*lda+i0+s*avxMR:]
				d := dst[base+p*avxMR : base+(p+1)*avxMR]
				copy(d, src[:rows])
				for i := rows; i < avxMR; i++ {
					d[i] = 0
				}
			}
		} else {
			for i := 0; i < rows; i++ {
				src := a[(i0+s*avxMR+i)*lda+pc:]
				for p := 0; p < kcEff; p++ {
					dst[base+p*avxMR+i] = src[p]
				}
			}
			for i := rows; i < avxMR; i++ {
				for p := 0; p < kcEff; p++ {
					dst[base+p*avxMR+i] = 0
				}
			}
		}
	}
}

// packB16 packs rows [pc, pc+kcEff) × cols [jc, jc+ncEff) of op(B) into
// 16-column strips: dst[strip*kcEff*16 + p*16 + j], zero-padding edge
// columns. The row-major case copies 16 contiguous floats (one cache line)
// per K step via copy(); the transposed case gathers strided.
func packB16(transB bool, b []float32, ldb, jc, ncEff, pc, kcEff int, dst []float32) {
	for s := 0; s*avxNR < ncEff; s++ {
		base := s * kcEff * avxNR
		cols := min(avxNR, ncEff-s*avxNR)
		if transB {
			// op(B)[p][j] = b[j*ldb + p] (B stored n×k).
			for j := 0; j < cols; j++ {
				src := b[(jc+s*avxNR+j)*ldb+pc:]
				for p := 0; p < kcEff; p++ {
					dst[base+p*avxNR+j] = src[p]
				}
			}
			for j := cols; j < avxNR; j++ {
				for p := 0; p < kcEff; p++ {
					dst[base+p*avxNR+j] = 0
				}
			}
		} else {
			for p := 0; p < kcEff; p++ {
				src := b[(pc+p)*ldb+jc+s*avxNR:]
				d := dst[base+p*avxNR : base+(p+1)*avxNR]
				copy(d, src[:cols])
				for j := cols; j < avxNR; j++ {
					d[j] = 0
				}
			}
		}
	}
}
