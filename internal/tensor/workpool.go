package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workPool is the persistent worker pool behind parallelFor/parallelForID.
// The historical implementation spawned one goroutine per chunk per call;
// at serving/training rates that is an allocation (closure + goroutine
// stack hand-off) and two scheduler round-trips per kernel invocation, and
// it shows up as contention when many replicas fan out concurrently. The
// pool instead keeps one long-lived, OS-thread-locked, core-pinned worker
// per chunk slot:
//
//   - Dispatch writes the job fields, then wakes workers over per-worker
//     capacity-1 channels — no allocation, no goroutine creation.
//   - Worker w always executes chunk w (deterministic block→worker
//     assignment). Sequential fan-outs over the same range therefore
//     revisit the same data on the same core, which is what lets the
//     blocked GEMM keep a worker's C-tile rows and packed A panel resident
//     across the K loop.
//   - The calling goroutine executes chunk 0 itself and then waits on a
//     capacity-1 done channel signalled by the last finishing worker.
//
// One fan-out runs at a time (the pool mutex); a nested or concurrent
// parallelFor fails the TryLock and runs inline on its caller. Workers are
// spawned lazily up to the largest chunk count ever requested and live for
// the process duration. Each locks its OS thread and (best effort, Linux)
// pins it to core w mod NumCPU — EXACLIM_NOPIN=1 disables pinning.
type workPool struct {
	mu    sync.Mutex
	wakes []chan struct{} // wakes[w-1] wakes the worker owning chunk w

	// Job state, written under mu before the wakes, read by woken workers
	// (the channel send orders the writes before the reads).
	body    func(lo, hi int)
	bodyID  func(id, lo, hi int)
	n, per  int
	pending atomic.Int64
	done    chan struct{}
}

var kernelPool = &workPool{done: make(chan struct{}, 1)}

// run executes one fan-out: chunk w = [w*per, min(w*per+per, n)) with
// per = max(ceil(n/workers), grain), exactly the historical chunk
// geometry. Returns false (having done nothing) when the pool is busy or
// the range collapses to a single chunk. Exactly one of body/bodyID is
// non-nil.
func (p *workPool) run(n, grain, workers int, body func(lo, hi int), bodyID func(id, lo, hi int)) bool {
	if !p.mu.TryLock() {
		return false
	}
	if chunks := (n + grain - 1) / grain; chunks < workers {
		workers = chunks
	}
	per := max((n+workers-1)/workers, grain)
	chunks := (n + per - 1) / per
	if chunks <= 1 {
		p.mu.Unlock()
		return false
	}
	p.ensureWorkers(chunks - 1)
	p.body, p.bodyID, p.n, p.per = body, bodyID, n, per
	p.pending.Store(int64(chunks - 1))
	for w := 1; w < chunks; w++ {
		p.wakes[w-1] <- struct{}{}
	}
	if bodyID != nil {
		bodyID(0, 0, per)
	} else {
		body(0, per)
	}
	<-p.done
	p.body, p.bodyID = nil, nil
	p.mu.Unlock()
	return true
}

// ensureWorkers spawns missing workers so chunk ids 1..k have owners.
// Called with mu held; spawning happens only the first time a larger
// fan-out is requested, so the steady state allocates nothing.
func (p *workPool) ensureWorkers(k int) {
	for len(p.wakes) < k {
		w := len(p.wakes) + 1
		wake := make(chan struct{}, 1)
		p.wakes = append(p.wakes, wake)
		go p.worker(w, wake)
	}
}

// worker owns chunk id w of every fan-out large enough to include it.
func (p *workPool) worker(w int, wake chan struct{}) {
	runtime.LockOSThread()
	pinThread(w)
	for range wake {
		lo := w * p.per
		hi := min(lo+p.per, p.n)
		if p.bodyID != nil {
			p.bodyID(w, lo, hi)
		} else {
			p.body(lo, hi)
		}
		// The caller may start the next job the instant done is signalled,
		// so no job field is touched past this decrement.
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}
