#include "textflag.h"

// AVX2+FMA GEMM micro-kernels over BLIS-style packed panels.
//
// Packed layouts (see packA6/packB16 in gemm.go):
//   A strip: ap[p*6 + i]  — 6 rows interleaved per K step
//   B strip: bp[p*16 + j] — 16 columns interleaved per K step
//
// The 6×16 register tile uses 12 YMM accumulators (rows 0..5 × two 8-lane
// column halves), two B loads and two rotating A broadcasts per K step:
// 12 FMAs per iteration, the full FMA-port width of one core.
//
// The full-tile kernel (gemmKern6x16) applies the alpha/beta epilogue
// itself; edge tiles go through gemmAcc6x16, which stores the raw 6×16
// accumulator for a masked Go epilogue (the "masked-edge variant": packing
// zero-pads the panels, so lanes beyond the edge hold zeros and the Go
// code simply writes the mEdge×nEdge region). The epilogues use
// VMULPS+VADDPS — never FMA — so a full tile and an edge tile round their
// epilogue arithmetic identically; only the K-loop FMA chains reassociate
// relative to the scalar reference (the documented ≤4·ULP-per-chain
// contract).

// K-accumulation loop shared by both kernels: CX = kc, SI = ap, DI = bp.
// Clobbers Y12..Y15, leaves the tile in Y0..Y11. The gklp/gkdone labels
// are function-scoped, so the macro may appear once per TEXT block.
#define GEMM_KLOOP \
	VXORPS Y0, Y0, Y0   \
	VXORPS Y1, Y1, Y1   \
	VXORPS Y2, Y2, Y2   \
	VXORPS Y3, Y3, Y3   \
	VXORPS Y4, Y4, Y4   \
	VXORPS Y5, Y5, Y5   \
	VXORPS Y6, Y6, Y6   \
	VXORPS Y7, Y7, Y7   \
	VXORPS Y8, Y8, Y8   \
	VXORPS Y9, Y9, Y9   \
	VXORPS Y10, Y10, Y10 \
	VXORPS Y11, Y11, Y11 \
	TESTQ CX, CX        \
	JZ    gkdone        \
gklp:                       \
	VMOVUPS (DI), Y12       \
	VMOVUPS 32(DI), Y13     \
	VBROADCASTSS (SI), Y14  \
	VFMADD231PS Y12, Y14, Y0 \
	VFMADD231PS Y13, Y14, Y1 \
	VBROADCASTSS 4(SI), Y15 \
	VFMADD231PS Y12, Y15, Y2 \
	VFMADD231PS Y13, Y15, Y3 \
	VBROADCASTSS 8(SI), Y14 \
	VFMADD231PS Y12, Y14, Y4 \
	VFMADD231PS Y13, Y14, Y5 \
	VBROADCASTSS 12(SI), Y15 \
	VFMADD231PS Y12, Y15, Y6 \
	VFMADD231PS Y13, Y15, Y7 \
	VBROADCASTSS 16(SI), Y14 \
	VFMADD231PS Y12, Y14, Y8 \
	VFMADD231PS Y13, Y14, Y9 \
	VBROADCASTSS 20(SI), Y15 \
	VFMADD231PS Y12, Y15, Y10 \
	VFMADD231PS Y13, Y15, Y11 \
	ADDQ $24, SI            \
	ADDQ $64, DI            \
	DECQ CX                 \
	JNZ  gklp               \
gkdone:

// One row of the mode-0 epilogue: C += alpha*acc (mul then add, matching
// the scalar two-rounding form).
#define EPI_ACCUM_ROW(acclo, acchi) \
	VMULPS  acclo, Y12, Y14 \
	VMOVUPS (BX), Y15       \
	VADDPS  Y15, Y14, Y14   \
	VMOVUPS Y14, (BX)       \
	VMULPS  acchi, Y12, Y14 \
	VMOVUPS 32(BX), Y15     \
	VADDPS  Y15, Y14, Y14   \
	VMOVUPS Y14, 32(BX)     \
	ADDQ    DX, BX

// One row of the mode-1 epilogue: C = alpha*acc (beta==0 on the first K
// block: C is never read).
#define EPI_STORE_ROW(acclo, acchi) \
	VMULPS  acclo, Y12, Y14 \
	VMOVUPS Y14, (BX)       \
	VMULPS  acchi, Y12, Y14 \
	VMOVUPS Y14, 32(BX)     \
	ADDQ    DX, BX

// One row of the mode-2 epilogue: C = beta*C + alpha*acc.
#define EPI_BLEND_ROW(acclo, acchi) \
	VMOVUPS (BX), Y15       \
	VMULPS  Y15, Y13, Y15   \
	VMULPS  acclo, Y12, Y14 \
	VADDPS  Y14, Y15, Y14   \
	VMOVUPS Y14, (BX)       \
	VMOVUPS 32(BX), Y15     \
	VMULPS  Y15, Y13, Y15   \
	VMULPS  acchi, Y12, Y14 \
	VADDPS  Y14, Y15, Y14   \
	VMOVUPS Y14, 32(BX)     \
	ADDQ    DX, BX

// func gemmKern6x16(kc int, ap, bp *float32, alpha, beta float32, mode int, c *float32, ldc int)
// mode: 0 = accumulate (C += alpha*acc), 1 = overwrite (C = alpha*acc),
// 2 = blend (C = beta*C + alpha*acc).
TEXT ·gemmKern6x16(SB), NOSPLIT, $0-56
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	GEMM_KLOOP

	VBROADCASTSS alpha+24(FP), Y12
	MOVQ c+40(FP), BX
	MOVQ ldc+48(FP), DX
	SHLQ $2, DX
	MOVQ mode+32(FP), AX
	CMPQ AX, $1
	JE   overwrite
	CMPQ AX, $2
	JE   blend

	EPI_ACCUM_ROW(Y0, Y1)
	EPI_ACCUM_ROW(Y2, Y3)
	EPI_ACCUM_ROW(Y4, Y5)
	EPI_ACCUM_ROW(Y6, Y7)
	EPI_ACCUM_ROW(Y8, Y9)
	EPI_ACCUM_ROW(Y10, Y11)
	VZEROUPPER
	RET

overwrite:
	EPI_STORE_ROW(Y0, Y1)
	EPI_STORE_ROW(Y2, Y3)
	EPI_STORE_ROW(Y4, Y5)
	EPI_STORE_ROW(Y6, Y7)
	EPI_STORE_ROW(Y8, Y9)
	EPI_STORE_ROW(Y10, Y11)
	VZEROUPPER
	RET

blend:
	VBROADCASTSS beta+28(FP), Y13
	EPI_BLEND_ROW(Y0, Y1)
	EPI_BLEND_ROW(Y2, Y3)
	EPI_BLEND_ROW(Y4, Y5)
	EPI_BLEND_ROW(Y6, Y7)
	EPI_BLEND_ROW(Y8, Y9)
	EPI_BLEND_ROW(Y10, Y11)
	VZEROUPPER
	RET

// func gemmAcc6x16(kc int, ap, bp, acc *float32)
// Raw-accumulator variant for masked edge tiles: same K loop, the 6×16
// tile is stored contiguously into acc[96] and the Go caller applies the
// alpha/beta epilogue to the live mEdge×nEdge region.
TEXT ·gemmAcc6x16(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	GEMM_KLOOP

	MOVQ acc+24(FP), BX
	VMOVUPS Y0, (BX)
	VMOVUPS Y1, 32(BX)
	VMOVUPS Y2, 64(BX)
	VMOVUPS Y3, 96(BX)
	VMOVUPS Y4, 128(BX)
	VMOVUPS Y5, 160(BX)
	VMOVUPS Y6, 192(BX)
	VMOVUPS Y7, 224(BX)
	VMOVUPS Y8, 256(BX)
	VMOVUPS Y9, 288(BX)
	VMOVUPS Y10, 320(BX)
	VMOVUPS Y11, 352(BX)
	VZEROUPPER
	RET

// func int8AxpyQuad(n int, av *int32, b0, b1, b2, b3 *int8, acc *int32)
// acc[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] for j in [0, n&^7).
// Pure int32 arithmetic (sign-extend, VPMULLD, VPADDD): products are
// bounded by 127², so the accumulation is exact and BIT-IDENTICAL to the
// scalar reference regardless of order — the INT8 path's contract.
TEXT ·int8AxpyQuad(SB), NOSPLIT, $0-56
	MOVQ n+0(FP), CX
	SHRQ $3, CX
	MOVQ av+8(FP), AX
	VPBROADCASTD (AX), Y8
	VPBROADCASTD 4(AX), Y9
	VPBROADCASTD 8(AX), Y10
	VPBROADCASTD 12(AX), Y11
	MOVQ b0+16(FP), SI
	MOVQ b1+24(FP), DI
	MOVQ b2+32(FP), R8
	MOVQ b3+40(FP), R9
	MOVQ acc+48(FP), BX
i8loop:
	VPMOVSXBD (SI), Y0
	VPMOVSXBD (DI), Y1
	VPMOVSXBD (R8), Y2
	VPMOVSXBD (R9), Y3
	VPMULLD Y8, Y0, Y0
	VPMULLD Y9, Y1, Y1
	VPMULLD Y10, Y2, Y2
	VPMULLD Y11, Y3, Y3
	VPADDD Y1, Y0, Y0
	VPADDD Y3, Y2, Y2
	VPADDD Y2, Y0, Y0
	VMOVDQU (BX), Y4
	VPADDD Y4, Y0, Y0
	VMOVDQU Y0, (BX)
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $32, BX
	DECQ CX
	JNZ  i8loop
	VZEROUPPER
	RET

// func fmaPeakProbe(iters int)
// 12 independent 8-lane FMA chains on registers — the machine's FMA peak
// with no memory traffic. 12·8·2 = 192 FLOPs per iteration; benchmarks
// time it to turn GEMM GFLOP/s into a %-of-peak figure.
TEXT ·fmaPeakProbe(SB), NOSPLIT, $0-8
	MOVQ iters+0(FP), CX
	TESTQ CX, CX
	JZ   probedone
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
probeloop:
	VFMADD231PS Y12, Y13, Y0
	VFMADD231PS Y12, Y13, Y1
	VFMADD231PS Y12, Y13, Y2
	VFMADD231PS Y12, Y13, Y3
	VFMADD231PS Y12, Y13, Y4
	VFMADD231PS Y12, Y13, Y5
	VFMADD231PS Y12, Y13, Y6
	VFMADD231PS Y12, Y13, Y7
	VFMADD231PS Y12, Y13, Y8
	VFMADD231PS Y12, Y13, Y9
	VFMADD231PS Y12, Y13, Y10
	VFMADD231PS Y12, Y13, Y11
	DECQ CX
	JNZ  probeloop
probedone:
	VZEROUPPER
	RET
