package tensor

import (
	"fmt"

	"repro/internal/simd"
)

// KernelISA selects the instruction set the tensor kernels execute with.
// The scalar kernels are the portable, bit-reproducible reference; the
// AVX2 kernels are the hand-vectorized fast path (FMA GEMM micro-kernels,
// vectorized INT8/elementwise/transpose loops, F16C FP16 conversion).
//
// Precision contract (DESIGN.md "SIMD kernels & worker pool"):
//   - FP16 conversions and all integer (INT8) kernels are BIT-IDENTICAL
//     across ISAs.
//   - Pure elementwise float kernels (Axpy, Scale, ScaleAllFinite) are
//     bit-identical too: the vector forms use mul+add, never FMA.
//   - GEMM and reductions (Dot, L2Norm) reassociate accumulation chains,
//     so results differ from scalar within ≤4·ULP per chain; within one
//     ISA they are deterministic, so resume-under-the-same-ISA stays
//     bit-exact while cross-ISA resume is tolerance-exact only.
type KernelISA uint8

const (
	// ISAAuto picks the best supported ISA (AVX2 where available).
	ISAAuto KernelISA = iota
	// ISAScalar forces the portable reference kernels, for
	// bit-reproducibility across machines (EXACLIM_NOSIMD=1 at startup
	// has the same effect).
	ISAScalar
	// ISAAVX2 requires the AVX2+FMA kernels; selecting it on hardware
	// without them is an error.
	ISAAVX2
)

// String names the ISA the way BENCH files and flags spell it.
func (i KernelISA) String() string {
	switch i {
	case ISAAuto:
		return "auto"
	case ISAScalar:
		return "scalar"
	case ISAAVX2:
		return "avx2"
	}
	return fmt.Sprintf("isa(%d)", uint8(i))
}

// ParseISA parses "auto", "scalar", or "avx2".
func ParseISA(s string) (KernelISA, error) {
	switch s {
	case "auto", "":
		return ISAAuto, nil
	case "scalar":
		return ISAScalar, nil
	case "avx2":
		return ISAAVX2, nil
	}
	return ISAAuto, fmt.Errorf("tensor: unknown kernel ISA %q (want auto, scalar, or avx2)", s)
}

// SetKernelISA pins the kernel ISA process-wide and returns the previously
// active one. ISAAuto re-enables hardware dispatch; ISAScalar forces the
// reference kernels (including hpfloat's FP16 converters, which share the
// switch); ISAAVX2 errors if the hardware lacks AVX2+FMA. The setting is a
// process global like SetParallelism: concurrent runs share it.
func SetKernelISA(isa KernelISA) (KernelISA, error) {
	prev := ActiveISA()
	switch isa {
	case ISAAuto:
		simd.SetDisabled(false)
	case ISAScalar:
		simd.SetDisabled(true)
	case ISAAVX2:
		if !simd.HasAVX2() {
			return prev, fmt.Errorf("tensor: AVX2 kernels requested but unsupported on this CPU")
		}
		simd.SetDisabled(false)
	default:
		return prev, fmt.Errorf("tensor: invalid kernel ISA %v", isa)
	}
	return prev, nil
}

// ActiveISA reports which kernel set Gemm and friends dispatch to right
// now — never ISAAuto, always the resolved choice.
func ActiveISA() KernelISA {
	if simd.UseAVX2() {
		return ISAAVX2
	}
	return ISAScalar
}

// --- per-ISA GEMM geometry and small-path crossover -----------------------
//
// The blocked path's register tile and cache blocks differ per ISA: the
// scalar micro-kernel is 4×8 (gemmMR×gemmNR in gemm.go); the AVX2 kernel
// is 6×16 — six broadcast rows against two 8-lane B columns, using 12 of
// the 16 YMM registers as accumulators.

const (
	avxMR = 6
	avxNR = 16
	// Cache blocks swept empirically on the 6×16 kernel (BENCH_9): of
	// {MC, KC} ∈ {60..192}×{128..384}, MC=144 KC=256 measured best on both
	// the conv-shaped and square benchmarks (one 6-row A strip = 6 KiB,
	// one 16-col B strip = 16 KiB, packed A panel ≈ 144 KiB in L2).
	avxKC = 256
	avxMC = 144
	avxNC = 2048
)

// Small-path crossovers, re-derived empirically per ISA with
// BenchmarkGemmCrossover. The scalar threshold keeps its historical value
// (2¹⁸ with m/k skinny guards). The AVX2 kernel amortizes its packing far
// earlier: measured on the 6×16 kernel, the blocked path already wins at
// m·n·k ≈ 1.5K for every shape except single-row products (m == 1 is a
// pure axpy; packing the whole B panel for one C row loses 2–3×), and the
// old shallow-K guard inverted — even k = 4 runs 4× faster blocked
// (m64n64k4: 19.3 vs 4.8 GFLOP/s). So the AVX2 predicate is just a low
// size floor plus the m == 1 exclusion.
var (
	gemmSmallMNKScalar = 1 << 18
	gemmSmallMNKAVX2   = 1 << 10
)

// GemmUsesSmallPath reports whether Gemm(m, n, k) dispatches to the small
// unblocked kernels instead of the packed blocked path under the ACTIVE
// ISA. Inference kernels that inline a GEMM (the direct convolution) use
// it to mirror Gemm's dispatch exactly, so their results stay
// bit-identical to the im2col+Gemm formulation for every shape; the
// predicate must therefore always agree with Gemm's own dispatch.
func GemmUsesSmallPath(m, n, k int) bool {
	if ActiveISA() == ISAAVX2 {
		return m*n*k <= gemmSmallMNKAVX2 || m < 2
	}
	return m*n*k <= gemmSmallMNKScalar || m < 4*gemmMR || k < 32
}

// KernelInfo describes the active kernel configuration for bench reports.
type KernelInfo struct {
	ISA        string `json:"isa"`
	GemmMR     int    `json:"gemm_mr"`
	GemmNR     int    `json:"gemm_nr"`
	Workers    int    `json:"workers"`
	HasAVX2    bool   `json:"has_avx2"`
	HasF16C    bool   `json:"has_f16c"`
	SmallPath  int    `json:"small_path_mnk"`
	PinWorkers bool   `json:"pin_workers"`
}

// FMAPeakProbe runs iters iterations of the synthetic FMA peak kernel —
// 12 independent 8-lane FMA chains, 192 FLOPs per iteration, the
// register-parallelism upper bound of one core — and reports whether it
// ran (false when the host lacks AVX2+FMA). Benchmarks time it to anchor
// the %peak figures in BENCH files against measured rather than nominal
// peak.
func FMAPeakProbe(iters int) bool { return fmaPeakProbeRun(iters) }

// Kernel reports the active kernel configuration.
func Kernel() KernelInfo {
	info := KernelInfo{
		ISA:        ActiveISA().String(),
		GemmMR:     gemmMR,
		GemmNR:     gemmNR,
		Workers:    Parallelism(),
		HasAVX2:    simd.HasAVX2(),
		HasF16C:    simd.HasF16C(),
		SmallPath:  gemmSmallMNKScalar,
		PinWorkers: pinEnabled(),
	}
	if ActiveISA() == ISAAVX2 {
		info.GemmMR, info.GemmNR = avxMR, avxNR
		info.SmallPath = gemmSmallMNKAVX2
	}
	return info
}
