package tensor

import (
	"testing"

	"repro/internal/simd"
)

func TestParseISARoundTrip(t *testing.T) {
	for _, isa := range []KernelISA{ISAAuto, ISAScalar, ISAAVX2} {
		got, err := ParseISA(isa.String())
		if err != nil || got != isa {
			t.Fatalf("ParseISA(%q) = %v, %v", isa.String(), got, err)
		}
	}
	if _, err := ParseISA("sse9"); err == nil {
		t.Fatal("ParseISA accepted garbage")
	}
	if isa, err := ParseISA(""); err != nil || isa != ISAAuto {
		t.Fatalf("ParseISA(\"\") = %v, %v; want auto", isa, err)
	}
}

func TestSetKernelISA(t *testing.T) {
	orig := ActiveISA()
	defer SetKernelISA(orig)

	if _, err := SetKernelISA(ISAScalar); err != nil {
		t.Fatalf("forcing scalar failed: %v", err)
	}
	if ActiveISA() != ISAScalar {
		t.Fatalf("ActiveISA() = %v after forcing scalar", ActiveISA())
	}
	if simd.HasAVX2() {
		prev, err := SetKernelISA(ISAAVX2)
		if err != nil {
			t.Fatalf("forcing avx2 on avx2 hardware failed: %v", err)
		}
		if prev != ISAScalar {
			t.Fatalf("previous ISA = %v, want scalar", prev)
		}
		if ActiveISA() != ISAAVX2 {
			t.Fatalf("ActiveISA() = %v after forcing avx2", ActiveISA())
		}
	} else {
		if _, err := SetKernelISA(ISAAVX2); err == nil {
			t.Fatal("forcing avx2 on non-avx2 hardware should error")
		}
	}
	if _, err := SetKernelISA(KernelISA(99)); err == nil {
		t.Fatal("invalid ISA should error")
	}
}

// TestGemmUsesSmallPathISAAware: the dispatch predicate must follow the
// active ISA — nn's direct convolution keys its fallback off it, and a
// mismatch with Gemm's real dispatch would silently break the
// conv-vs-im2col bit-parity contract.
func TestGemmUsesSmallPathISAAware(t *testing.T) {
	orig := ActiveISA()
	defer SetKernelISA(orig)

	SetKernelISA(ISAScalar)
	// Mid-size shape: small under the scalar crossover (2¹⁸), blocked
	// under the AVX2 one (2¹⁰).
	if !GemmUsesSmallPath(32, 32, 32) {
		t.Fatal("32³ should be small-path under the scalar ISA")
	}
	// Single-row products stay on the small path under every ISA.
	if !GemmUsesSmallPath(1, 4096, 4096) {
		t.Fatal("m=1 should be small-path under the scalar ISA")
	}
	if simd.HasAVX2() {
		SetKernelISA(ISAAVX2)
		if GemmUsesSmallPath(32, 32, 32) {
			t.Fatal("32³ should be blocked under the AVX2 ISA")
		}
		if !GemmUsesSmallPath(1, 4096, 4096) {
			t.Fatal("m=1 should be small-path under the AVX2 ISA")
		}
		if !GemmUsesSmallPath(4, 8, 8) {
			t.Fatal("tiny shapes should be small-path under the AVX2 ISA")
		}
	}
}

func TestKernelInfo(t *testing.T) {
	info := Kernel()
	if info.ISA != ActiveISA().String() {
		t.Fatalf("KernelInfo ISA %q != active %q", info.ISA, ActiveISA())
	}
	switch ActiveISA() {
	case ISAAVX2:
		if info.GemmMR != avxMR || info.GemmNR != avxNR || info.SmallPath != gemmSmallMNKAVX2 {
			t.Fatalf("AVX2 KernelInfo geometry wrong: %+v", info)
		}
	case ISAScalar:
		if info.GemmMR != gemmMR || info.GemmNR != gemmNR || info.SmallPath != gemmSmallMNKScalar {
			t.Fatalf("scalar KernelInfo geometry wrong: %+v", info)
		}
	}
	if info.Workers != Parallelism() {
		t.Fatalf("KernelInfo workers %d != %d", info.Workers, Parallelism())
	}
}
