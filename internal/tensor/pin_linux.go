//go:build linux

package tensor

import (
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// Worker pinning. Each pool worker locks its goroutine to an OS thread and
// binds that thread to core (w mod NumCPU) with sched_setaffinity, so the
// deterministic chunk→worker assignment becomes a deterministic
// chunk→core assignment: the packed panels and C tiles a worker streams
// stay in that core's private caches across sequential fan-outs instead of
// migrating with the scheduler. Best effort: a failed syscall (cpuset
// restrictions, exotic containers) is ignored and the worker simply runs
// unpinned. EXACLIM_NOPIN=1 disables pinning for environments where the
// kernel scheduler knows better (shared machines, heavy co-tenancy).
var noPin = os.Getenv("EXACLIM_NOPIN") == "1"

// pinEnabled reports whether pool workers bind to cores on this platform.
func pinEnabled() bool { return !noPin }

// pinThread binds the calling OS thread (which must be locked) to one core.
func pinThread(w int) {
	if noPin {
		return
	}
	cpu := w % runtime.NumCPU()
	var mask [16]uint64 // 1024-bit cpu_set_t
	mask[cpu/64] = 1 << (cpu % 64)
	// tid 0 means "the calling thread"; errors are deliberately ignored.
	syscall.Syscall(syscall.SYS_SCHED_SETAFFINITY, 0,
		uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
}
