#include "textflag.h"

// Vectorized elementwise hot paths. Every float kernel here uses
// VMULPS+VADDPS — never FMA — so each element's arithmetic is the exact
// two-rounding sequence the scalar Go loops perform and the results are
// BIT-IDENTICAL to the scalar reference (the Go compiler does not fuse
// mul+add on amd64). Only dotAVX2 reassociates: it accumulates in four
// float64 lanes, where each float32 product is exactly representable, so
// the lane arithmetic is exact and only the summation ORDER differs from
// the scalar reference.

// func axpyAVX2(alpha float32, x, y *float32, n int)
// y[i] += alpha*x[i] for i in [0, n); n is a multiple of 8.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	SHRQ $3, CX
	JZ   axdone
axloop:
	VMULPS  (SI), Y0, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     axloop
axdone:
	VZEROUPPER
	RET

// func scaleAVX2(alpha float32, x *float32, n int)
// x[i] *= alpha for i in [0, n); n is a multiple of 8.
TEXT ·scaleAVX2(SB), NOSPLIT, $0-24
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	JZ   scdone
scloop:
	VMULPS  (SI), Y0, Y1
	VMOVUPS Y1, (SI)
	ADDQ    $32, SI
	DECQ    CX
	JNZ     scloop
scdone:
	VZEROUPPER
	RET

// func scaleAllFiniteAVX2(alpha float32, x *float32, n int) int32
// x[i] *= alpha for i in [0, n), n a multiple of 8; returns nonzero iff
// any scaled value is NaN or Inf. Non-finiteness is exponent-field
// all-ones: (bits & 0x7F800000) == 0x7F800000, tested with integer
// compares and OR-accumulated so the sweep never branches.
TEXT ·scaleAllFiniteAVX2(SB), NOSPLIT, $0-28
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	MOVL $0x7F800000, AX
	MOVD AX, X2
	VPBROADCASTD X2, Y2
	VPXOR Y3, Y3, Y3
	TESTQ CX, CX
	JZ   sfdone
sfloop:
	VMULPS  (SI), Y0, Y1
	VMOVUPS Y1, (SI)
	VPAND   Y2, Y1, Y1
	VPCMPEQD Y2, Y1, Y1
	VPOR    Y1, Y3, Y3
	ADDQ    $32, SI
	DECQ    CX
	JNZ     sfloop
sfdone:
	VMOVMSKPS Y3, AX
	MOVL AX, ret+24(FP)
	VZEROUPPER
	RET

// func dotAVX2(x, y *float32, n int) float64
// Σ float64(x[i])*float64(y[i]) over [0, n); n is a multiple of 8.
// Four-lane float64 accumulation in two chains; every float32 product is
// exact in float64 (24+24 < 53 mantissa bits), so FMA here rounds once on
// the add — identical per-element arithmetic to the scalar loop, with a
// fixed 8-way interleaved summation order.
TEXT ·dotAVX2(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	TESTQ CX, CX
	JZ   dtdone
dtloop:
	VCVTPS2PD (SI), Y2
	VCVTPS2PD (DI), Y3
	VFMADD231PD Y3, Y2, Y0
	VCVTPS2PD 16(SI), Y4
	VCVTPS2PD 16(DI), Y5
	VFMADD231PD Y5, Y4, Y1
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  dtloop
dtdone:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VUNPCKHPD X0, X0, X1
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func transpose8x8AVX2(src *float32, srcStride int, dst *float32, dstStride int)
// dst[j*dstStride+i] = src[i*srcStride+j] for an 8×8 tile. The classic
// three-stage in-register recipe: unpack 32-bit pairs, shuffle 64-bit
// pairs, then swap 128-bit halves across the two YMM lanes.
TEXT ·transpose8x8AVX2(SB), NOSPLIT, $0-32
	MOVQ src+0(FP), SI
	MOVQ srcStride+8(FP), AX
	SHLQ $2, AX
	MOVQ dst+16(FP), DI
	MOVQ dstStride+24(FP), BX
	SHLQ $2, BX

	VMOVUPS (SI), Y0
	VMOVUPS (SI)(AX*1), Y1
	LEAQ    (SI)(AX*2), SI
	VMOVUPS (SI), Y2
	VMOVUPS (SI)(AX*1), Y3
	LEAQ    (SI)(AX*2), SI
	VMOVUPS (SI), Y4
	VMOVUPS (SI)(AX*1), Y5
	LEAQ    (SI)(AX*2), SI
	VMOVUPS (SI), Y6
	VMOVUPS (SI)(AX*1), Y7

	VUNPCKLPS Y1, Y0, Y8
	VUNPCKHPS Y1, Y0, Y9
	VUNPCKLPS Y3, Y2, Y10
	VUNPCKHPS Y3, Y2, Y11
	VUNPCKLPS Y5, Y4, Y12
	VUNPCKHPS Y5, Y4, Y13
	VUNPCKLPS Y7, Y6, Y14
	VUNPCKHPS Y7, Y6, Y15

	VSHUFPS $0x44, Y10, Y8, Y0
	VSHUFPS $0xEE, Y10, Y8, Y1
	VSHUFPS $0x44, Y11, Y9, Y2
	VSHUFPS $0xEE, Y11, Y9, Y3
	VSHUFPS $0x44, Y14, Y12, Y4
	VSHUFPS $0xEE, Y14, Y12, Y5
	VSHUFPS $0x44, Y15, Y13, Y6
	VSHUFPS $0xEE, Y15, Y13, Y7

	VPERM2F128 $0x20, Y4, Y0, Y8
	VPERM2F128 $0x20, Y5, Y1, Y9
	VPERM2F128 $0x20, Y6, Y2, Y10
	VPERM2F128 $0x20, Y7, Y3, Y11
	VPERM2F128 $0x31, Y4, Y0, Y12
	VPERM2F128 $0x31, Y5, Y1, Y13
	VPERM2F128 $0x31, Y6, Y2, Y14
	VPERM2F128 $0x31, Y7, Y3, Y15

	VMOVUPS Y8, (DI)
	VMOVUPS Y9, (DI)(BX*1)
	LEAQ    (DI)(BX*2), DI
	VMOVUPS Y10, (DI)
	VMOVUPS Y11, (DI)(BX*1)
	LEAQ    (DI)(BX*2), DI
	VMOVUPS Y12, (DI)
	VMOVUPS Y13, (DI)(BX*1)
	LEAQ    (DI)(BX*2), DI
	VMOVUPS Y14, (DI)
	VMOVUPS Y15, (DI)(BX*1)
	VZEROUPPER
	RET
