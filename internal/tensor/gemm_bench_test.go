package tensor

import "testing"

func benchGemm(b *testing.B, m, n, k int) {
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(i%7) - 3
	}
	for i := range bb {
		bb[i] = float32(i%5) - 2
	}
	b.SetBytes(int64(2 * m * n * k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, m, n, k, 1, a, k, bb, n, 0, c, n)
	}
	b.ReportMetric(float64(2*m*n*k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}
func BenchmarkGemmConvLike(b *testing.B) { benchGemm(b, 32, 1024, 288) }
func BenchmarkGemmBig(b *testing.B)      { benchGemm(b, 256, 512, 512) }
func BenchmarkGemmTiny(b *testing.B)     { benchGemm(b, 8, 256, 72) }
