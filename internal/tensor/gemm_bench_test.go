package tensor

import (
	"fmt"
	"testing"
)

func benchGemm(b *testing.B, m, n, k int) {
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(i%7) - 3
	}
	for i := range bb {
		bb[i] = float32(i%5) - 2
	}
	b.SetBytes(int64(2 * m * n * k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, m, n, k, 1, a, k, bb, n, 0, c, n)
	}
	b.ReportMetric(float64(2*m*n*k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}
func BenchmarkGemmConvLike(b *testing.B) { benchGemm(b, 32, 1024, 288) }
func BenchmarkGemmBig(b *testing.B)      { benchGemm(b, 256, 512, 512) }
func BenchmarkGemmTiny(b *testing.B)     { benchGemm(b, 8, 256, 72) }

// BenchmarkGemmCrossover times the small (scalar axpy) kernel against the
// blocked AVX2 kernel on the same shape, bypassing dispatch — the data
// behind the gemmSmallMNKAVX2 threshold in isa.go. Run with
// -bench GemmCrossover to re-derive the crossover on new hardware.
func BenchmarkGemmCrossover(b *testing.B) {
	if ActiveISA() != ISAAVX2 {
		b.Skip("AVX2 kernels unavailable or disabled")
	}
	for _, tc := range []struct{ m, n, k int }{
		{12, 16, 16}, {12, 32, 32}, {16, 32, 16}, {16, 64, 16},
		{24, 32, 32}, {16, 64, 32}, {32, 64, 16}, {32, 64, 32},
		{48, 64, 48}, {64, 128, 32},
	} {
		a := make([]float32, tc.m*tc.k)
		bb := make([]float32, tc.k*tc.n)
		c := make([]float32, tc.m*tc.n)
		for i := range a {
			a[i] = float32(i%7) - 3
		}
		for i := range bb {
			bb[i] = float32(i%5) - 2
		}
		flops := float64(2 * tc.m * tc.n * tc.k)
		name := fmt.Sprintf("m%dn%dk%d_mnk%d", tc.m, tc.n, tc.k, tc.m*tc.n*tc.k)
		b.Run(name+"/small", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmSmall(false, false, tc.m, tc.n, tc.k, 1, a, tc.k, bb, tc.n, 0, c, tc.n)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
		b.Run(name+"/blocked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmBlockedAVX2(false, false, tc.m, tc.n, tc.k, 1, a, tc.k, bb, tc.n, 0, c, tc.n)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
