package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelForIDAssignsChunks: ids are the chunk indices, id 0 runs on
// the calling goroutine, every index is covered exactly once, and the
// chunk→id mapping is deterministic across repeated fan-outs (the property
// the blocked GEMM's panel/C-tile locality relies on).
func TestParallelForIDAssignsChunks(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	const n, grain = 1000, 1
	var firstSpans sync.Map
	for trial := 0; trial < 5; trial++ {
		visited := make([]int32, n)
		var mu sync.Mutex
		ids := map[int][2]int{}
		parallelForID(n, grain, func(id, lo, hi int) {
			mu.Lock()
			if prevSpan, dup := ids[id]; dup {
				t.Errorf("id %d issued twice: %v and [%d,%d)", id, prevSpan, lo, hi)
			}
			ids[id] = [2]int{lo, hi}
			mu.Unlock()
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visited[i], 1)
			}
		})
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("trial %d: index %d visited %d times", trial, i, v)
			}
		}
		for id, span := range ids {
			if got, ok := firstSpans.Load(id); ok && got.([2]int) != span {
				t.Fatalf("trial %d: id %d span %v, earlier %v — assignment not deterministic",
					trial, id, span, got)
			}
			firstSpans.Store(id, span)
		}
	}
}

// TestParallelForZeroAlloc is the satellite guard: with the persistent
// pool, steady-state dispatch must not allocate. The closure is hoisted
// outside the measured region (constructing a capturing closure is the
// caller's allocation, not the pool's), and a warm-up call spawns the
// workers first.
func TestParallelForZeroAlloc(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	x := make([]float32, 1<<14)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i]++
		}
	}
	parallelFor(len(x), 1024, body) // warm-up: spawn pool workers
	allocs := testing.AllocsPerRun(100, func() {
		parallelFor(len(x), 1024, body)
	})
	if allocs != 0 {
		t.Fatalf("steady-state parallelFor allocates %.1f objects/op, want 0", allocs)
	}

	bodyID := func(id, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i]++
		}
	}
	parallelForID(len(x), 1024, bodyID)
	allocs = testing.AllocsPerRun(100, func() {
		parallelForID(len(x), 1024, bodyID)
	})
	if allocs != 0 {
		t.Fatalf("steady-state parallelForID allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWorkPoolHammer drives the pool from many goroutines concurrently
// (serving replicas) with nested fan-outs inside the bodies (kernels that
// call kernels) — run under -race this is the pool's data-race guard.
func TestWorkPoolHammer(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var inner atomic.Int64
				parallelFor(64, 1, func(lo, hi int) {
					// Nested fan-out: must fall back inline, not deadlock.
					parallelFor(hi-lo, 1, func(l, h int) {
						inner.Add(int64(h - l))
					})
				})
				if inner.Load() != 64 {
					t.Errorf("round %d: covered %d indices, want 64", r, inner.Load())
					return
				}
				total.Add(inner.Load())
			}
		}()
	}
	wg.Wait()
	if total.Load() != goroutines*rounds*64 {
		t.Fatalf("total work %d, want %d", total.Load(), goroutines*rounds*64)
	}
}

// TestWorkPoolGrowsWithParallelism: raising the worker count mid-process
// (core.Config.KernelWorkers does this per run) must grow the pool and
// still cover the range.
func TestWorkPoolGrowsWithParallelism(t *testing.T) {
	prev := SetParallelism(2)
	defer SetParallelism(prev)
	var count atomic.Int64
	body := func(lo, hi int) { count.Add(int64(hi - lo)) }
	parallelFor(512, 1, body)
	SetParallelism(8)
	parallelFor(512, 1, body)
	if count.Load() != 1024 {
		t.Fatalf("covered %d, want 1024", count.Load())
	}
}
