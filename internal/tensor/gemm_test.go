package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveGemm is the triple-loop reference the blocked kernel is verified
// against: unambiguous, unblocked, no packing.
func naiveGemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				var av, bv float32
				if transA {
					av = a[p*lda+i]
				} else {
					av = a[i*lda+p]
				}
				if transB {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				sum += float64(av) * float64(bv)
			}
			prev := float64(0)
			if beta != 0 {
				prev = float64(beta) * float64(c[i*ldc+j])
			}
			c[i*ldc+j] = float32(prev + float64(alpha)*sum)
		}
	}
}

func randomSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestGemmMatchesNaiveReference is the property test of the blocked GEMM:
// random m/n/k (including 0-dim edges), all four transpose combinations,
// and a spread of alpha/beta values, compared elementwise against the
// triple-loop reference. Sizes straddle the small/blocked threshold so both
// kernels are exercised.
func TestGemmMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := func() int {
		switch rng.Intn(5) {
		case 0:
			return 0 // zero-dim edge
		case 1:
			return 1 + rng.Intn(4)
		default:
			return 1 + rng.Intn(40)
		}
	}
	alphas := []float32{0, 1, 0.5, -2}
	betas := []float32{0, 1, 0.75, -1}

	for iter := 0; iter < 300; iter++ {
		m, n, k := dims(), dims(), dims()
		transA, transB := rng.Intn(2) == 1, rng.Intn(2) == 1
		alpha := alphas[rng.Intn(len(alphas))]
		beta := betas[rng.Intn(len(betas))]

		// Leading dims with optional slack beyond the minimum.
		acols, arows := k, m
		if transA {
			acols, arows = m, k
		}
		bcols, brows := n, k
		if transB {
			bcols, brows = k, n
		}
		lda := acols + rng.Intn(3)
		ldb := bcols + rng.Intn(3)
		ldc := n + rng.Intn(3)
		if lda == 0 {
			lda = 1
		}
		if ldb == 0 {
			ldb = 1
		}
		if ldc == 0 {
			ldc = 1
		}

		a := randomSlice(rng, maxInt(arows*lda, 1))
		b := randomSlice(rng, maxInt(brows*ldb, 1))
		c := randomSlice(rng, maxInt(m*ldc, 1))
		want := append([]float32(nil), c...)

		naiveGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
		Gemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)

		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				got, ref := float64(c[i*ldc+j]), float64(want[i*ldc+j])
				if math.Abs(got-ref) > 1e-3*(1+math.Abs(ref)) {
					t.Fatalf("iter %d (tA=%v tB=%v m=%d n=%d k=%d α=%g β=%g): C[%d,%d] = %g, want %g",
						iter, transA, transB, m, n, k, alpha, beta, i, j, got, ref)
				}
			}
		}
	}
}

// TestGemmBlockedLargePanels drives the packed path across multiple K and N
// cache blocks (k > gemmKC forces multi-block beta handling).
func TestGemmBlockedLargePanels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ m, n, k int }{
		{gemmMR*3 + 1, gemmNR*5 + 3, gemmKC + 37},
		{gemmMC + 5, gemmNR + 1, gemmKC*2 + 1},
		{3, 2*gemmNR + 5, gemmKC + 1},
	} {
		for _, trans := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			transA, transB := trans[0], trans[1]
			lda, ldb := tc.k, tc.n
			if transA {
				lda = tc.m
			}
			if transB {
				ldb = tc.k
			}
			a := randomSlice(rng, tc.m*tc.k)
			b := randomSlice(rng, tc.k*tc.n)
			c := randomSlice(rng, tc.m*tc.n)
			want := append([]float32(nil), c...)
			naiveGemm(transA, transB, tc.m, tc.n, tc.k, 1.5, a, lda, b, ldb, 0.5, want, tc.n)
			Gemm(transA, transB, tc.m, tc.n, tc.k, 1.5, a, lda, b, ldb, 0.5, c, tc.n)
			for i := range c {
				diff := math.Abs(float64(c[i] - want[i]))
				if diff > 1e-2*(1+math.Abs(float64(want[i]))) {
					t.Fatalf("m=%d n=%d k=%d tA=%v tB=%v: elem %d = %g, want %g",
						tc.m, tc.n, tc.k, transA, transB, i, c[i], want[i])
				}
			}
		}
	}
}

// TestGemmBetaZeroIgnoresGarbage verifies the beta==0 contract the pooled
// executor depends on: C's prior contents (even NaN) are never read.
func TestGemmBetaZeroIgnoresGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []struct{ m, n, k int }{{3, 4, 5}, {40, 48, 64}} {
		a := randomSlice(rng, size.m*size.k)
		b := randomSlice(rng, size.k*size.n)
		c := make([]float32, size.m*size.n)
		for i := range c {
			c[i] = float32(math.NaN())
		}
		Gemm(false, false, size.m, size.n, size.k, 1, a, size.k, b, size.n, 0, c, size.n)
		for i, v := range c {
			if math.IsNaN(float64(v)) {
				t.Fatalf("m=%d n=%d k=%d: NaN leaked into C[%d] under beta=0",
					size.m, size.n, size.k, i)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
