package tensor

import (
	"fmt"
	"math"
)

// Axpy computes y += alpha*x over the raw slices (BLAS saxpy). The serial
// branch avoids constructing an escaping closure, keeping the pooled
// training loop allocation-free.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if Parallelism() <= 1 || len(x) <= 4096 {
		axpyRange(alpha, x, y, 0, len(x))
		return
	}
	parallelFor(len(x), 4096, func(lo, hi int) {
		axpyRange(alpha, x, y, lo, hi)
	})
}

func axpyRange(alpha float32, x, y []float32, lo, hi int) {
	// The vector kernel is mul+add per element — bit-identical to this
	// loop (amd64 Go never fuses into FMA), so the ISA does not affect
	// optimizer arithmetic.
	if simdAxpy(alpha, x[lo:hi], y[lo:hi]) {
		return
	}
	for i := lo; i < hi; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	if Parallelism() <= 1 || len(x) <= 4096 {
		scaleRange(alpha, x, 0, len(x))
		return
	}
	parallelFor(len(x), 4096, func(lo, hi int) {
		scaleRange(alpha, x, lo, hi)
	})
}

func scaleRange(alpha float32, x []float32, lo, hi int) {
	if simdScale(alpha, x[lo:hi]) {
		return
	}
	for i := lo; i < hi; i++ {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y, accumulated in float64. The
// vector path keeps the float64 accumulation (each float32 product is
// exact in float64) but sums in four interleaved lanes, so its result can
// differ from the scalar order within float64 rounding of the same exact
// products — deterministic within an ISA, tolerance-exact across ISAs.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	if sum, ok := simdDot(x, y); ok {
		return sum
	}
	var sum float64
	for i := range x {
		sum += float64(x[i]) * float64(y[i])
	}
	return sum
}

// L2Norm returns the Euclidean norm of x, accumulated in float64 for
// stability (LARC depends on accurate norms of large weight tensors).
func L2Norm(x []float32) float64 {
	if sum, ok := simdDot(x, x); ok {
		return math.Sqrt(sum)
	}
	var sum float64
	for _, v := range x {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

// Sum returns the sum of all elements, accumulated in float64.
func Sum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty input).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Add returns a new tensor a+b (shapes must match elementwise).
func Add(a, b *Tensor) *Tensor {
	checkSameLen(a, b, "Add")
	out := New(a.shape)
	ad, bd, od := a.data, b.data, out.data
	parallelFor(len(ad), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = ad[i] + bd[i]
		}
	})
	return out
}

// Sub returns a-b.
func Sub(a, b *Tensor) *Tensor {
	checkSameLen(a, b, "Sub")
	out := New(a.shape)
	ad, bd, od := a.data, b.data, out.data
	parallelFor(len(ad), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = ad[i] - bd[i]
		}
	})
	return out
}

// Mul returns the Hadamard (elementwise) product a*b.
func Mul(a, b *Tensor) *Tensor {
	checkSameLen(a, b, "Mul")
	out := New(a.shape)
	ad, bd, od := a.data, b.data, out.data
	parallelFor(len(ad), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = ad[i] * bd[i]
		}
	})
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Tensor) {
	checkSameLen(a, b, "AddInPlace")
	Axpy(1, b.data, a.data)
}

// ReLU returns max(x, 0) elementwise.
func ReLU(x *Tensor) *Tensor {
	out := New(x.shape)
	xd, od := x.data, out.data
	parallelFor(len(xd), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if xd[i] > 0 {
				od[i] = xd[i]
			}
		}
	})
	return out
}

// ReLUGrad returns grad masked by (x > 0).
func ReLUGrad(x, grad *Tensor) *Tensor {
	checkSameLen(x, grad, "ReLUGrad")
	out := New(x.shape)
	xd, gd, od := x.data, grad.data, out.data
	parallelFor(len(xd), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if xd[i] > 0 {
				od[i] = gd[i]
			}
		}
	})
	return out
}

func checkSameLen(a, b *Tensor, op string) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// AllFinite reports whether every element is finite (no NaN/Inf). Mixed
// precision training uses this for loss-scale backoff decisions.
func AllFinite(x []float32) bool {
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

// ScaleAllFinite multiplies every element of x by alpha in place and
// reports whether all scaled values are finite — the trainer's fused
// gradient epilogue (rank averaging + loss-scale removal + overflow check
// in one sweep instead of three).
func ScaleAllFinite(alpha float32, x []float32) bool {
	// The vector form multiplies with the identical single rounding and
	// tests the exponent field for all-ones — the same predicate as the
	// IsNaN/IsInf pair — so scaled values and the verdict are bit-identical
	// across ISAs.
	if ok, handled := simdScaleAllFinite(alpha, x); handled {
		return ok
	}
	ok := true
	for i, v := range x {
		v *= alpha
		x[i] = v
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			ok = false
		}
	}
	return ok
}
