//go:build !linux

package tensor

// Pinning is Linux-only; elsewhere workers rely on the OS scheduler.

func pinEnabled() bool { return false }

func pinThread(w int) {}
