package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeBasics(t *testing.T) {
	s := NCHW(2, 16, 768, 1152)
	if got := s.NumElements(); got != 2*16*768*1152 {
		t.Fatalf("NumElements = %d", got)
	}
	if s.Rank() != 4 {
		t.Fatalf("Rank = %d", s.Rank())
	}
	if !s.Equal(Shape{2, 16, 768, 1152}) {
		t.Fatal("Equal failed")
	}
	if s.Equal(Shape{2, 16, 768}) {
		t.Fatal("Equal matched different rank")
	}
	if s.String() != "[2 16 768 1152]" {
		t.Fatalf("String = %q", s.String())
	}
	st := s.Strides()
	want := []int{16 * 768 * 1152, 768 * 1152, 1152, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("Strides = %v", st)
		}
	}
	c := s.Clone()
	c[0] = 99
	if s[0] != 2 {
		t.Fatal("Clone aliases original")
	}
	if (Shape{0, 3}).Valid() {
		t.Fatal("zero extent should be invalid")
	}
}

func TestTensorIndexing(t *testing.T) {
	a := New(Shape{2, 3, 4})
	a.Set(7.5, 1, 2, 3)
	if a.At(1, 2, 3) != 7.5 {
		t.Fatal("At/Set roundtrip failed")
	}
	if a.Data()[1*12+2*4+3] != 7.5 {
		t.Fatal("row-major offset wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	a.At(2, 0, 0)
}

func TestTensorCloneReshape(t *testing.T) {
	a := FromSlice(Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	b := a.Clone()
	b.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Fatal("Clone aliases data")
	}
	r := a.Reshape(Shape{3, 2})
	r.Data()[5] = -1
	if a.Data()[5] != -1 {
		t.Fatal("Reshape must alias data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	a.Reshape(Shape{4, 2})
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if v := Full(Shape{3}, 2.5).Data(); v[0] != 2.5 || v[2] != 2.5 {
		t.Fatal("Full wrong")
	}
	if v := Ones(Shape{2}).Data(); v[1] != 1 {
		t.Fatal("Ones wrong")
	}
	h := HeInit(OIHW(64, 32, 3, 3), rng)
	// He std = sqrt(2/288) ≈ 0.0833; sample std should be within 20%.
	var sum, sumsq float64
	for _, v := range h.Data() {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(h.NumElements())
	std := math.Sqrt(sumsq/n - (sum/n)*(sum/n))
	want := math.Sqrt(2.0 / 288.0)
	if math.Abs(std-want)/want > 0.2 {
		t.Fatalf("HeInit std = %g, want ≈ %g", std, want)
	}
	u := RandUniform(Shape{1000}, -1, 1, rng)
	for _, v := range u.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("RandUniform out of range: %g", v)
		}
	}
}

// naiveMatMul is the O(n³) reference used to validate the blocked GEMM.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	c := New(Shape{m, n})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func tensorsClose(a, b *Tensor, tol float64) bool {
	for i, v := range a.Data() {
		if math.Abs(float64(v)-float64(b.Data()[i])) > tol {
			return false
		}
	}
	return true
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 17, 29}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := RandNormal(Shape{m, k}, 0, 1, rng)
		b := RandNormal(Shape{k, n}, 0, 1, rng)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !tensorsClose(got, want, 1e-4) {
			t.Fatalf("MatMul mismatch at %v", dims)
		}
	}
}

func TestGemmTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 5, 7, 6
	a := RandNormal(Shape{m, k}, 0, 1, rng)
	b := RandNormal(Shape{k, n}, 0, 1, rng)
	want := naiveMatMul(a, b)

	// A stored transposed (k×m).
	at := New(Shape{k, m})
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at.Set(a.At(i, p), p, i)
		}
	}
	// B stored transposed (n×k).
	bt := New(Shape{n, k})
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt.Set(b.At(p, j), j, p)
		}
	}

	cases := []struct {
		name       string
		ta, tb     bool
		amat, bmat *Tensor
		lda, ldb   int
	}{
		{"TN", true, false, at, b, m, n},
		{"NT", false, true, a, bt, k, k},
		{"TT", true, true, at, bt, m, k},
	}
	for _, tc := range cases {
		c := New(Shape{m, n})
		Gemm(tc.ta, tc.tb, m, n, k, 1, tc.amat.Data(), tc.lda, tc.bmat.Data(), tc.ldb, 0, c.Data(), n)
		if !tensorsClose(c, want, 1e-4) {
			t.Fatalf("Gemm %s mismatch", tc.name)
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n, k := 4, 4, 4
	a := RandNormal(Shape{m, k}, 0, 1, rng)
	b := RandNormal(Shape{k, n}, 0, 1, rng)
	c := Full(Shape{m, n}, 2)
	Gemm(false, false, m, n, k, 0.5, a.Data(), k, b.Data(), n, 3, c.Data(), n)
	want := naiveMatMul(a, b)
	for i := range c.Data() {
		expect := 0.5*want.Data()[i] + 3*2
		if math.Abs(float64(c.Data()[i]-expect)) > 1e-4 {
			t.Fatalf("alpha/beta mismatch at %d: got %g want %g", i, c.Data()[i], expect)
		}
	}
	// beta=0 must overwrite even NaN-free garbage.
	c2 := Full(Shape{m, n}, 42)
	Gemm(false, false, m, n, k, 1, a.Data(), k, b.Data(), n, 0, c2.Data(), n)
	if !tensorsClose(c2, want, 1e-4) {
		t.Fatal("beta=0 did not overwrite C")
	}
}

func TestConvGeomOutputSizes(t *testing.T) {
	cases := []struct {
		g      ConvGeom
		oh, ow int
	}{
		// 7×7 stride-2 conv on 1152×768 with SAME padding: paper's first layer.
		{ConvGeom{InH: 768, InW: 1152, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3, DilH: 1, DilW: 1}, 384, 576},
		// 3×3 dilated-2 conv keeps size with pad=2.
		{ConvGeom{InH: 96, InW: 144, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, DilH: 2, DilW: 2}, 96, 144},
		// 3×3 maxpool stride 2.
		{ConvGeom{InH: 384, InW: 576, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, DilH: 1, DilW: 1}, 192, 288},
	}
	for i, tc := range cases {
		if tc.g.OutH() != tc.oh || tc.g.OutW() != tc.ow {
			t.Fatalf("case %d: got %dx%d want %dx%d", i, tc.g.OutH(), tc.g.OutW(), tc.oh, tc.ow)
		}
	}
	if SamePad(3, 1) != 1 || SamePad(5, 1) != 2 || SamePad(3, 12) != 12 || SamePad(7, 1) != 3 {
		t.Fatal("SamePad wrong")
	}
}

func TestIm2colSmall(t *testing.T) {
	// 1 channel, 3×3 input, 2×2 kernel, stride 1, no pad → 2×2 output, 4 cols.
	src := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	g := ConvGeom{InH: 3, InW: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1, DilH: 1, DilW: 1}
	dst := make([]float32, 4*4)
	Im2col(src, 1, g, dst)
	want := []float32{
		1, 2, 4, 5, // kernel tap (0,0)
		2, 3, 5, 6, // (0,1)
		4, 5, 7, 8, // (1,0)
		5, 6, 8, 9, // (1,1)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Im2col[%d] = %g want %g\nfull: %v", i, dst[i], want[i], dst)
		}
	}
}

func TestIm2colPaddingZeros(t *testing.T) {
	src := []float32{1, 2, 3, 4} // 2×2
	g := ConvGeom{InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1}
	cols := g.OutH() * g.OutW()
	if cols != 4 {
		t.Fatalf("cols = %d", cols)
	}
	dst := make([]float32, 9*cols)
	Im2col(src, 1, g, dst)
	// Center tap (kh=1,kw=1) must reproduce the input.
	center := dst[4*cols : 5*cols]
	for i, v := range []float32{1, 2, 3, 4} {
		if center[i] != v {
			t.Fatalf("center tap wrong: %v", center)
		}
	}
	// Top-left tap (kh=0,kw=0) sees padding except at output (1,1).
	tl := dst[0:cols]
	if tl[0] != 0 || tl[1] != 0 || tl[2] != 0 || tl[3] != 1 {
		t.Fatalf("top-left tap wrong: %v", tl)
	}
}

func TestCol2imAdjointProperty(t *testing.T) {
	// <Im2col(x), y> == <x, Col2im(y)> for random x, y — the defining
	// adjoint property that makes conv backward-by-data correct.
	rng := rand.New(rand.NewSource(5))
	geoms := []ConvGeom{
		{InH: 5, InW: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		{InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, DilH: 1, DilW: 1},
		{InH: 9, InW: 9, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, DilH: 2, DilW: 2},
		{InH: 6, InW: 10, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, DilH: 1, DilW: 1},
	}
	const C = 3
	for gi, g := range geoms {
		n := C * g.InH * g.InW
		m := C * g.KH * g.KW * g.OutH() * g.OutW()
		x := make([]float32, n)
		y := make([]float32, m)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		for i := range y {
			y[i] = float32(rng.NormFloat64())
		}
		ix := make([]float32, m)
		Im2col(x, C, g, ix)
		cy := make([]float32, n)
		Col2im(y, C, g, cy)
		lhs := Dot(ix, y)
		rhs := Dot(x, cy)
		if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
			t.Fatalf("geom %d: adjoint violated: %g vs %g", gi, lhs, rhs)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(Shape{4}, []float32{1, -2, 3, -4})
	b := FromSlice(Shape{4}, []float32{10, 20, 30, 40})
	if got := Add(a, b).Data(); got[0] != 11 || got[3] != 36 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data(); got[1] != 22 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data(); got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
	r := ReLU(a)
	if d := r.Data(); d[0] != 1 || d[1] != 0 || d[2] != 3 || d[3] != 0 {
		t.Fatalf("ReLU = %v", d)
	}
	g := ReLUGrad(a, b)
	if d := g.Data(); d[0] != 10 || d[1] != 0 || d[2] != 30 || d[3] != 0 {
		t.Fatalf("ReLUGrad = %v", d)
	}
	y := []float32{1, 1, 1}
	Axpy(2, []float32{1, 2, 3}, y)
	if y[2] != 7 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
	if L2Norm([]float32{3, 4}) != 5 {
		t.Fatal("L2Norm wrong")
	}
	if Sum([]float32{1, 2, 3}) != 6 {
		t.Fatal("Sum wrong")
	}
	if MaxAbs([]float32{1, -9, 3}) != 9 {
		t.Fatal("MaxAbs wrong")
	}
	if !AllFinite([]float32{1, 2}) || AllFinite([]float32{float32(math.NaN())}) ||
		AllFinite([]float32{float32(math.Inf(1))}) {
		t.Fatal("AllFinite wrong")
	}
}

func TestParallelismControl(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	if Parallelism() != 4 {
		t.Fatal("SetParallelism did not stick")
	}
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Fatal("SetParallelism floor of 1 not enforced")
	}
	// Kernels must produce identical results at any worker count.
	rng := rand.New(rand.NewSource(6))
	a := RandNormal(Shape{37, 23}, 0, 1, rng)
	b := RandNormal(Shape{23, 31}, 0, 1, rng)
	SetParallelism(1)
	c1 := MatMul(a, b)
	SetParallelism(8)
	c8 := MatMul(a, b)
	if !tensorsClose(c1, c8, 0) {
		t.Fatal("GEMM result depends on parallelism")
	}
}

func TestGemmPropertyLinearity(t *testing.T) {
	// Property: GEMM is linear in A — (A1+A2)·B == A1·B + A2·B.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a1 := RandNormal(Shape{m, k}, 0, 1, r)
		a2 := RandNormal(Shape{m, k}, 0, 1, r)
		b := RandNormal(Shape{k, n}, 0, 1, r)
		lhs := MatMul(Add(a1, a2), b)
		rhs := Add(MatMul(a1, b), MatMul(a2, b))
		return tensorsClose(lhs, rhs, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colRoundTripIdentityKernel(t *testing.T) {
	// With a 1×1 kernel, stride 1, no pad, Im2col is the identity and
	// Col2im is its exact inverse.
	rng := rand.New(rand.NewSource(8))
	g := ConvGeom{InH: 4, InW: 6, KH: 1, KW: 1, StrideH: 1, StrideW: 1, DilH: 1, DilW: 1}
	const C = 2
	x := make([]float32, C*24)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	mid := make([]float32, len(x))
	Im2col(x, C, g, mid)
	back := make([]float32, len(x))
	Col2im(mid, C, g, back)
	for i := range x {
		if x[i] != mid[i] || x[i] != back[i] {
			t.Fatal("1x1 im2col/col2im not identity")
		}
	}
}
