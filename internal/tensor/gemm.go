package tensor

import (
	"fmt"
	"sync"
)

// Cache-blocked GEMM geometry. The kernel follows the classic panel-packing
// decomposition (GotoBLAS/BLIS): C is computed in MR×NR register tiles from
// an A panel packed into MR-strips and a B panel packed into NR-strips, so
// the innermost loop streams both operands contiguously regardless of the
// transpose flags, and each packed panel is reused across a whole cache
// block instead of being re-read strided from DRAM.
const (
	gemmMR = 4   // register-tile rows
	gemmNR = 8   // register-tile cols
	gemmKC = 256 // K cache block (A strip + B strip stay L1/L2 resident)
	gemmMC = 128 // M cache block (one packed A panel)
	gemmNC = 2048
)

// The small-path crossover predicate (GemmUsesSmallPath) and its per-ISA
// thresholds live in isa.go next to the ISA dispatch they depend on.

// Gemm computes C = alpha*op(A)*op(B) + beta*C for row-major matrices,
// where op is identity or transpose per transA/transB. A is m×k (after op),
// B is k×n, C is m×n. This is the workhorse behind the "implicit GEMM"
// convolution formulation the paper's FLOP accounting assumes.
//
// Beta scaling is folded into the compute tiles (no separate pass over C),
// and with beta == 0 the previous contents of C are never read, so C may be
// an uninitialized pool buffer.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemmArgs(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		gemmScaleC(beta, m, n, c, ldc)
		return
	}
	// The packed path pays for its panel traffic only when the panels are
	// reused enough: a skinny M (few C rows per packed B) or a shallow K
	// (few micro-kernel steps per packed element) makes packing a net loss,
	// as does a small problem overall.
	// The small path is always the scalar reference kernels, under every
	// ISA: nn's direct convolution mirrors gemmSmallRows term-for-term and
	// relies on bit-identical results for small shapes. Only the blocked
	// path below dispatches to the AVX2 micro-kernels.
	if GemmUsesSmallPath(m, n, k) {
		gemmSmall(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	if ActiveISA() == ISAAVX2 {
		gemmBlockedAVX2(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	gemmBlocked(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

func checkGemmArgs(transA, transB bool, m, n, k int, a []float32, lda int,
	b []float32, ldb int, c []float32, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: Gemm negative dims m=%d n=%d k=%d", m, n, k))
	}
	arows, acols := m, k
	if transA {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if transB {
		brows, bcols = n, k
	}
	if lda < acols || ldb < bcols || ldc < n {
		panic(fmt.Sprintf("tensor: Gemm bad leading dims lda=%d ldb=%d ldc=%d", lda, ldb, ldc))
	}
	if arows > 0 && acols > 0 && len(a) < (arows-1)*lda+acols {
		panic("tensor: Gemm A too short")
	}
	if brows > 0 && bcols > 0 && len(b) < (brows-1)*ldb+bcols {
		panic("tensor: Gemm B too short")
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		panic("tensor: Gemm C too short")
	}
}

// gemmScaleC applies C = beta*C when there is no multiply work (alpha==0 or
// k==0). It runs inline for small C and parallelizes only when the scaling
// itself is substantial.
func gemmScaleC(beta float32, m, n int, c []float32, ldc int) {
	if beta == 1 {
		return
	}
	parallelFor(m, max(1, 4096/max(n, 1)), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				clear(row)
			} else {
				for j := range row {
					row[j] *= beta
				}
			}
		}
	})
}

// ---------- small path: serial single-pass kernels ----------

// gemmSmall handles shapes the packed path cannot amortize: unblocked
// row-wise kernels with beta folded into the row/tile updates. Tiny
// problems run inline with no goroutines (and no escaping closure); larger
// skinny problems still parallelize over rows.
func gemmSmall(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	if Parallelism() <= 1 || m <= 8 {
		gemmSmallRows(transA, transB, 0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	parallelFor(m, 8, func(lo, hi int) {
		gemmSmallRows(transA, transB, lo, hi, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	})
}

// gemmSmallRows computes C rows [lo, hi).
func gemmSmallRows(transA, transB bool, lo, hi, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	switch {
	case !transB:
		// Axpy form over rows of B, register-blocked 4 B-rows deep: each
		// pass streams four B rows against one C row, quartering the C
		// load/store traffic. The C row is beta-scaled once, in cache.
		for i := lo; i < hi; i++ {
			ci := c[i*ldc : i*ldc+n]
			scaleRow(ci, beta)
			p := 0
			for ; p+3 < k; p += 4 {
				var a0, a1, a2, a3 float32
				if transA {
					a0 = alpha * a[p*lda+i]
					a1 = alpha * a[(p+1)*lda+i]
					a2 = alpha * a[(p+2)*lda+i]
					a3 = alpha * a[(p+3)*lda+i]
				} else {
					a0 = alpha * a[i*lda+p]
					a1 = alpha * a[i*lda+p+1]
					a2 = alpha * a[i*lda+p+2]
					a3 = alpha * a[i*lda+p+3]
				}
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b[p*ldb : p*ldb+n]
				b1 := b[(p+1)*ldb : (p+1)*ldb+n]
				b2 := b[(p+2)*ldb : (p+2)*ldb+n]
				b3 := b[(p+3)*ldb : (p+3)*ldb+n]
				for j := range ci {
					ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; p < k; p++ {
				var ap float32
				if transA {
					ap = alpha * a[p*lda+i]
				} else {
					ap = alpha * a[i*lda+p]
				}
				if ap == 0 {
					continue
				}
				bp := b[p*ldb : p*ldb+n]
				for j, bv := range bp {
					ci[j] += ap * bv
				}
			}
		}
	case !transA:
		// Dot form (B stored n×k). Four B rows are streamed per pass so the
		// A row is loaded once per step, and the four running sums form
		// independent FP-add chains (a single-accumulator dot is
		// latency-bound); the tail uses a 4-way unrolled single dot.
		for i := lo; i < hi; i++ {
			ai := a[i*lda : i*lda+k]
			ci := c[i*ldc : i*ldc+n]
			j := 0
			for ; j+3 < n; j += 4 {
				b0 := b[j*ldb : j*ldb+k]
				b1 := b[(j+1)*ldb : (j+1)*ldb+k]
				b2 := b[(j+2)*ldb : (j+2)*ldb+k]
				b3 := b[(j+3)*ldb : (j+3)*ldb+k]
				var s0, s1, s2, s3 float32
				for p, av := range ai {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				ci[j] = betaTimes(beta, ci[j]) + alpha*s0
				ci[j+1] = betaTimes(beta, ci[j+1]) + alpha*s1
				ci[j+2] = betaTimes(beta, ci[j+2]) + alpha*s2
				ci[j+3] = betaTimes(beta, ci[j+3]) + alpha*s3
			}
			for ; j < n; j++ {
				bj := b[j*ldb : j*ldb+k]
				ci[j] = betaTimes(beta, ci[j]) + alpha*dot4(ai, bj, k)
			}
		}
	default:
		// Aᵀ·Bᵀ: dot over strided A column and contiguous B row.
		for i := lo; i < hi; i++ {
			ci := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				bj := b[j*ldb : j*ldb+k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += a[p*lda+i] * bj[p]
				}
				ci[j] = betaTimes(beta, ci[j]) + alpha*sum
			}
		}
	}
}

// dot4 is a 4-accumulator float32 dot product over x[:k], y[:k].
func dot4(x, y []float32, k int) float32 {
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+3 < k; p += 4 {
		s0 += x[p] * y[p]
		s1 += x[p+1] * y[p+1]
		s2 += x[p+2] * y[p+2]
		s3 += x[p+3] * y[p+3]
	}
	for ; p < k; p++ {
		s0 += x[p] * y[p]
	}
	return (s0 + s1) + (s2 + s3)
}

// betaTimes returns beta*v without reading v when beta is zero, so C may
// hold uninitialized pool memory (including NaNs) under beta==0 semantics.
func betaTimes(beta, v float32) float32 {
	if beta == 0 {
		return 0
	}
	return beta * v
}

func scaleRow(row []float32, beta float32) {
	switch beta {
	case 1:
	case 0:
		clear(row)
	default:
		for j := range row {
			row[j] *= beta
		}
	}
}

// ---------- blocked path: packed panels + register micro-kernel ----------

// panelCache recycles GEMM packing panels without a shared mutex: every
// concurrent executor — training ranks, serving replicas — packs panels on
// every blocked call, and routing that traffic through the size-class
// pool's global lock made packing scratch the one place replicas contend.
// sync.Pool gives per-P free lists (no lock on the fast path) and lets the
// GC trim idle panels.
var panelCache = sync.Pool{New: func() any { return new([]float32) }}

// getPanel returns a packing panel of at least n elements.
func getPanel(n int) *[]float32 {
	p := panelCache.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

func putPanel(p *[]float32) { panelCache.Put(p) }

func gemmBlocked(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	nc := min(gemmNC, n)
	kc := min(gemmKC, k)
	mc := min(gemmMC, m)

	bPanelMax := ((nc + gemmNR - 1) / gemmNR) * gemmNR * kc
	aPanelMax := ((mc + gemmMR - 1) / gemmMR) * gemmMR * kc
	mcBlocks := (m + mc - 1) / mc

	bPanelPtr := getPanel(bPanelMax)
	bPanel := *bPanelPtr
	defer putPanel(bPanelPtr)

	for jc := 0; jc < n; jc += nc {
		ncEff := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcEff := min(kc, k-pc)
			packB(transB, b, ldb, jc, ncEff, pc, kcEff, bPanel)
			first := pc == 0
			// Parallel over disjoint M blocks: each worker packs its own A
			// panel and owns a distinct row range of C.
			parallelFor(mcBlocks, 1, func(blo, bhi int) {
				aPanelPtr := getPanel(aPanelMax)
				aPanel := *aPanelPtr
				defer putPanel(aPanelPtr)
				for blk := blo; blk < bhi; blk++ {
					i0 := blk * mc
					mcEff := min(mc, m-i0)
					packA(transA, a, lda, i0, mcEff, pc, kcEff, aPanel)
					for jr := 0; jr < ncEff; jr += gemmNR {
						bStrip := bPanel[(jr/gemmNR)*kcEff*gemmNR:]
						nEdge := min(gemmNR, ncEff-jr)
						for ir := 0; ir < mcEff; ir += gemmMR {
							aStrip := aPanel[(ir/gemmMR)*kcEff*gemmMR:]
							mEdge := min(gemmMR, mcEff-ir)
							gemmMicro(kcEff, aStrip, bStrip, alpha, beta, first,
								c[(i0+ir)*ldc+jc+jr:], ldc, mEdge, nEdge)
						}
					}
				}
			})
		}
	}
}

// gemmMicro computes one MR×NR register tile: acc = Ap·Bp over kc packed
// steps, then writes C[:mEdge,:nEdge] with alpha/beta applied. `first`
// marks the first K block, where beta scaling happens exactly once.
func gemmMicro(kc int, ap, bp []float32, alpha, beta float32, first bool,
	c []float32, ldc, mEdge, nEdge int) {
	var acc [gemmMR * gemmNR]float32
	for p := 0; p < kc; p++ {
		av := (*[gemmMR]float32)(ap[p*gemmMR:])
		bv := (*[gemmNR]float32)(bp[p*gemmNR:])
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		for j := 0; j < gemmNR; j++ {
			bj := bv[j]
			acc[0*gemmNR+j] += a0 * bj
			acc[1*gemmNR+j] += a1 * bj
			acc[2*gemmNR+j] += a2 * bj
			acc[3*gemmNR+j] += a3 * bj
		}
	}
	for i := 0; i < mEdge; i++ {
		ci := c[i*ldc : i*ldc+nEdge]
		accRow := acc[i*gemmNR:]
		switch {
		case !first:
			for j := range ci {
				ci[j] += alpha * accRow[j]
			}
		case beta == 0:
			for j := range ci {
				ci[j] = alpha * accRow[j]
			}
		default:
			for j := range ci {
				ci[j] = beta*ci[j] + alpha*accRow[j]
			}
		}
	}
}

// packA copies rows [i0, i0+mcEff) × cols [pc, pc+kcEff) of op(A) into
// MR-strips: dst[strip*kcEff*MR + p*MR + i], zero-padding edge rows so the
// micro-kernel never branches on M.
func packA(transA bool, a []float32, lda, i0, mcEff, pc, kcEff int, dst []float32) {
	for s := 0; s*gemmMR < mcEff; s++ {
		base := s * kcEff * gemmMR
		rows := min(gemmMR, mcEff-s*gemmMR)
		if transA {
			// op(A)[i][p] = a[p*lda + i] (A stored k×m): one contiguous read
			// per p covers the whole strip.
			for p := 0; p < kcEff; p++ {
				src := a[(pc+p)*lda+i0+s*gemmMR:]
				d := dst[base+p*gemmMR:]
				for i := 0; i < rows; i++ {
					d[i] = src[i]
				}
				for i := rows; i < gemmMR; i++ {
					d[i] = 0
				}
			}
		} else {
			for i := 0; i < rows; i++ {
				src := a[(i0+s*gemmMR+i)*lda+pc:]
				for p := 0; p < kcEff; p++ {
					dst[base+p*gemmMR+i] = src[p]
				}
			}
			for i := rows; i < gemmMR; i++ {
				for p := 0; p < kcEff; p++ {
					dst[base+p*gemmMR+i] = 0
				}
			}
		}
	}
}

// packB copies rows [pc, pc+kcEff) × cols [jc, jc+ncEff) of op(B) into
// NR-strips: dst[strip*kcEff*NR + p*NR + j], zero-padding edge columns.
func packB(transB bool, b []float32, ldb, jc, ncEff, pc, kcEff int, dst []float32) {
	for s := 0; s*gemmNR < ncEff; s++ {
		base := s * kcEff * gemmNR
		cols := min(gemmNR, ncEff-s*gemmNR)
		if transB {
			// op(B)[p][j] = b[j*ldb + p] (B stored n×k).
			for j := 0; j < cols; j++ {
				src := b[(jc+s*gemmNR+j)*ldb+pc:]
				for p := 0; p < kcEff; p++ {
					dst[base+p*gemmNR+j] = src[p]
				}
			}
			for j := cols; j < gemmNR; j++ {
				for p := 0; p < kcEff; p++ {
					dst[base+p*gemmNR+j] = 0
				}
			}
		} else {
			for p := 0; p < kcEff; p++ {
				src := b[(pc+p)*ldb+jc+s*gemmNR:]
				d := dst[base+p*gemmNR:]
				for j := 0; j < cols; j++ {
					d[j] = src[j]
				}
				for j := cols; j < gemmNR; j++ {
					d[j] = 0
				}
			}
		}
	}
}

// MatMul multiplies two rank-2 tensors: (m×k)·(k×n) → m×n.
func MatMul(a, b *Tensor) *Tensor {
	if a.shape.Rank() != 2 || b.shape.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	c := New(Shape{m, n})
	Gemm(false, false, m, n, k, 1, a.data, k, b.data, n, 0, c.data, n)
	return c
}
