package tensor

import "fmt"

// Gemm computes C = alpha*op(A)*op(B) + beta*C for row-major matrices,
// where op is identity or transpose per transA/transB. A is m×k (after op),
// B is k×n, C is m×n. This is the workhorse behind the "implicit GEMM"
// convolution formulation the paper's FLOP accounting assumes.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkGemmArgs(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)

	if beta != 1 {
		parallelFor(m, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := c[i*ldc : i*ldc+n]
				if beta == 0 {
					clear(row)
				} else {
					for j := range row {
						row[j] *= beta
					}
				}
			}
		})
	}
	if alpha == 0 {
		return
	}

	switch {
	case !transA && !transB:
		gemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case !transA && transB:
		gemmNT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	default:
		gemmTT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	}
}

func checkGemmArgs(transA, transB bool, m, n, k int, a []float32, lda int,
	b []float32, ldb int, c []float32, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: Gemm negative dims m=%d n=%d k=%d", m, n, k))
	}
	arows, acols := m, k
	if transA {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if transB {
		brows, bcols = n, k
	}
	if lda < acols || ldb < bcols || ldc < n {
		panic(fmt.Sprintf("tensor: Gemm bad leading dims lda=%d ldb=%d ldc=%d", lda, ldb, ldc))
	}
	if arows > 0 && len(a) < (arows-1)*lda+acols {
		panic("tensor: Gemm A too short")
	}
	if brows > 0 && len(b) < (brows-1)*ldb+bcols {
		panic("tensor: Gemm B too short")
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		panic("tensor: Gemm C too short")
	}
}

// gemmNN: C += alpha * A(m×k) * B(k×n). Inner loop is written as an
// axpy over rows of B so it vectorizes and stays cache-friendly.
func gemmNN(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*ldc : i*ldc+n]
			ai := a[i*lda : i*lda+k]
			for p := 0; p < k; p++ {
				av := alpha * ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*ldb : p*ldb+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// gemmTN: C += alpha * Aᵀ(m×k) * B(k×n) where A is stored k×m.
func gemmTN(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*ldc : i*ldc+n]
			for p := 0; p < k; p++ {
				av := alpha * a[p*lda+i]
				if av == 0 {
					continue
				}
				bp := b[p*ldb : p*ldb+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
}

// gemmNT: C += alpha * A(m×k) * Bᵀ(k×n) where B is stored n×k.
// Dot-product form: both operands stream contiguously.
func gemmNT(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*lda : i*lda+k]
			ci := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				bj := b[j*ldb : j*ldb+k]
				var sum float32
				for p, av := range ai {
					sum += av * bj[p]
				}
				ci[j] += alpha * sum
			}
		}
	})
}

// gemmTT: C += alpha * Aᵀ * Bᵀ (A stored k×m, B stored n×k).
func gemmTT(m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				bj := b[j*ldb : j*ldb+k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += a[p*lda+i] * bj[p]
				}
				ci[j] += alpha * sum
			}
		}
	})
}

// MatMul multiplies two rank-2 tensors: (m×k)·(k×n) → m×n.
func MatMul(a, b *Tensor) *Tensor {
	if a.shape.Rank() != 2 || b.shape.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	c := New(Shape{m, n})
	Gemm(false, false, m, n, k, 1, a.data, k, b.data, n, 0, c.data, n)
	return c
}
