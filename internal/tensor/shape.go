// Package tensor provides dense, contiguous, row-major float32 tensors and
// the BLAS-like kernels (GEMM, im2col, elementwise and reduction primitives)
// that the neural-network layers in this repository are built from.
//
// Layout convention is NCHW (batch, channel, height, width), matching the
// convention used by the paper's cuDNN-backed TensorFlow stack.
package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the extent of each tensor dimension, outermost first.
type Shape []int

// NumElements returns the total element count of the shape. An empty shape
// describes a scalar and has one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every extent is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// String renders the shape as, e.g., "[2 16 768 1152]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Strides returns row-major (C-order) strides for the shape.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// NCHW is a convenience constructor for the 4-D activation shape used
// throughout the networks.
func NCHW(n, c, h, w int) Shape { return Shape{n, c, h, w} }

// OIHW is a convenience constructor for convolution filter shapes
// (outChannels, inChannels, kernelH, kernelW).
func OIHW(o, i, h, w int) Shape { return Shape{o, i, h, w} }
