package tensor

import (
	"fmt"
	"math"
	"sync"
)

// INT8 GEMM — the quantized inference kernel behind the serving stack's
// INT8 precision. Weights arrive as symmetric int8 codes with one scale
// per output channel (compress.QuantizeSymInt8); the activation panel is
// quantized dynamically per call with a single tensor-wide scale
// (QuantizeActInt8). The multiply-accumulate runs entirely in int32 —
// exact, since |code| ≤ 127 bounds every product by 127² and the K depth
// is checked against int32 overflow — so the only rounding is the two
// quantizations and the final dequantizing multiply. That makes the kernel
// deterministic and batch-invariant: a tile's logits do not depend on its
// batch neighbors, exactly like the FP32 path.

// maxInt8GemmK bounds the reduction depth so the int32 accumulator cannot
// overflow: k·127² must stay below 2³¹−1.
const maxInt8GemmK = (1<<31 - 1) / (127 * 127)

// accCache recycles int32 accumulator rows like gemm.go's panelCache:
// per-P free lists, no lock on the hot path.
var accCache = sync.Pool{New: func() any { return new([]int32) }}

func getAccRow(n int) *[]int32 {
	p := accCache.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putAccRow(p *[]int32) { accCache.Put(p) }

// QuantizeActInt8 quantizes a float32 activation panel to symmetric int8
// codes with one dynamic per-tensor scale (maxAbs/127) and returns that
// scale. A zero panel returns scale 0 with all-zero codes. Non-finite
// activations deterministically produce code 0 and a non-finite scale, so
// the dequantized output is non-finite — garbage-in-garbage-out, matching
// the FP32 kernels, never a silent wrong-but-plausible mask.
func QuantizeActInt8(src []float32, dst []int8) float32 {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("tensor: QuantizeActInt8 dst %d < src %d", len(dst), len(src)))
	}
	var maxAbs float32
	for _, v := range src {
		if v != v || v > math.MaxFloat32 || v < -math.MaxFloat32 {
			clear(dst[:len(src)])
			return float32(math.NaN())
		}
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		clear(dst[:len(src)])
		return 0
	}
	inv := 1 / float64(scale)
	for i, v := range src[:len(src)] {
		code := math.Round(float64(v) * inv)
		switch {
		case code >= 127:
			dst[i] = 127
		case code <= -127:
			dst[i] = -127
		default:
			dst[i] = int8(code)
		}
	}
	return scale
}

// GemmInt8 computes the dequantized product of two int8 code matrices:
//
//	C[i,j] = aScales[i] · bScale · Σ_p A[i,p]·B[p,j]
//
// A is m×k row-major (weight codes, one scale per row — the output
// channel), B is k×n row-major (the quantized activation panel, one scale
// for the whole panel). C is overwritten (beta=0 semantics; it may be
// uninitialized pool memory). The accumulation is exact in int32; the row
// is dequantized once, in cache, after its reduction completes.
func GemmInt8(m, n, k int, a []int8, aScales []float32, b []int8, bScale float32, c []float32) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: GemmInt8 negative dims m=%d n=%d k=%d", m, n, k))
	}
	if k > maxInt8GemmK {
		panic(fmt.Sprintf("tensor: GemmInt8 k=%d would overflow int32 accumulation (max %d)", k, maxInt8GemmK))
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n || len(aScales) < m {
		panic("tensor: GemmInt8 operand too short")
	}
	if m == 0 || n == 0 {
		return
	}
	if rows := int8GemmRowGrain(n, k); Parallelism() > 1 && m > rows {
		parallelFor(m, rows, func(lo, hi int) {
			gemmInt8Rows(lo, hi, n, k, a, aScales, b, bScale, c)
		})
		return
	}
	gemmInt8Rows(0, m, n, k, a, aScales, b, bScale, c)
}

// int8GemmRowGrain picks the parallel row granularity so tiny problems
// stay serial (mirroring gemmSmall's inline threshold).
func int8GemmRowGrain(n, k int) int {
	grain := 1 << 16 / max(1, n*k)
	return max(8, grain)
}

// gemmInt8Rows computes C rows [lo, hi): 4-deep unrolled int32 axpy over
// the B panel with an all-zero weight-group skip, then the dequantizing
// epilogue.
func gemmInt8Rows(lo, hi, n, k int, a []int8, aScales []float32, b []int8, bScale float32, c []float32) {
	accPtr := getAccRow(n)
	acc := *accPtr
	defer putAccRow(accPtr)
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		for j := range acc {
			acc[j] = 0
		}
		p := 0
		var av [4]int32
		for ; p+3 < k; p += 4 {
			a0 := int32(ai[p])
			a1 := int32(ai[p+1])
			a2 := int32(ai[p+2])
			a3 := int32(ai[p+3])
			if a0|a1|a2|a3 == 0 {
				continue
			}
			b0 := b[p*n : p*n+n]
			b1 := b[(p+1)*n : (p+1)*n+n]
			b2 := b[(p+2)*n : (p+2)*n+n]
			b3 := b[(p+3)*n : (p+3)*n+n]
			// AVX2 quad-axpy (sign-extend + VPMULLD + VPADDD): exact int32
			// arithmetic, so the vector prefix is bit-identical to the
			// scalar loop — the INT8 path has no ISA tolerance at all.
			av[0], av[1], av[2], av[3] = a0, a1, a2, a3
			j := simdInt8AxpyQuad(&av, b0, b1, b2, b3, acc)
			for ; j < len(acc); j++ {
				acc[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
			}
		}
		for ; p < k; p++ {
			ap := int32(ai[p])
			if ap == 0 {
				continue
			}
			bp := b[p*n : p*n+n]
			for j := range acc {
				acc[j] += ap * int32(bp[j])
			}
		}
		s := aScales[i] * bScale
		ci := c[i*n : i*n+n]
		for j, v := range acc {
			ci[j] = float32(v) * s
		}
	}
}
