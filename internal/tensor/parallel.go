package tensor

import (
	"runtime"
	"sync/atomic"
)

// parallelismV controls how many workers the compute kernels in this
// package fan out to. It defaults to GOMAXPROCS. Setting it to 1 makes all
// kernels run serially, which is useful for deterministic profiling and on
// single-core machines where fan-out only adds overhead. Stored atomically:
// kernels read it concurrently with runs that adjust it
// (core.Config.KernelWorkers).
var parallelismV atomic.Int64

func init() { parallelismV.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the kernel worker count (minimum 1) and returns the
// previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelismV.Swap(int64(n)))
}

// Parallelism returns the current kernel worker count.
func Parallelism() int { return int(parallelismV.Load()) }

// parallelFor splits [0, n) into contiguous chunks and invokes body(lo, hi)
// on each, using up to Parallelism() workers from the persistent pool.
// body must be safe to call concurrently on disjoint ranges. Work smaller
// than grain elements runs inline to avoid dispatch overhead on tiny
// tensors. Steady-state dispatch is allocation-free (see workpool.go); the
// chunk geometry is identical to the historical goroutine-per-chunk
// implementation, so chunk-dependent tuning carries over.
func parallelFor(n, grain int, body func(lo, hi int)) {
	workers := Parallelism()
	if workers <= 1 || n <= grain {
		body(0, n)
		return
	}
	if !kernelPool.run(n, grain, workers, body, nil) {
		// Pool busy (nested or concurrent fan-out): run inline. One caller
		// keeps all workers saturated; the others make progress serially
		// instead of oversubscribing the cores.
		body(0, n)
	}
}

// parallelForID is parallelFor with the chunk index exposed: body(id, lo,
// hi) receives id ∈ [0, chunks), unique within one call, with id 0 always
// executed by the calling goroutine. Kernels use the id to reuse per-worker
// scratch (GEMM packing panels) and to keep block→worker assignment stable
// across sequential fan-outs: chunk w always lands on pool worker w, so the
// C-tile rows a worker touched in one K block are the rows it revisits in
// the next — the cache-topology-aware assignment the blocked GEMM relies
// on.
func parallelForID(n, grain int, body func(id, lo, hi int)) {
	workers := Parallelism()
	if workers <= 1 || n <= grain {
		body(0, 0, n)
		return
	}
	if !kernelPool.run(n, grain, workers, nil, body) {
		body(0, 0, n)
	}
}
