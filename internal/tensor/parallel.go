package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelismV controls how many worker goroutines the compute kernels in
// this package fan out to. It defaults to GOMAXPROCS. Setting it to 1
// makes all kernels run serially, which is useful for deterministic
// profiling and on single-core machines where goroutine fan-out only
// adds overhead. Stored atomically: kernels read it concurrently with
// runs that adjust it (core.Config.KernelWorkers).
var parallelismV atomic.Int64

func init() { parallelismV.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the kernel worker count (minimum 1) and returns the
// previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelismV.Swap(int64(n)))
}

// Parallelism returns the current kernel worker count.
func Parallelism() int { return int(parallelismV.Load()) }

// parallelFor splits [0, n) into contiguous chunks and invokes body(lo, hi)
// on each, using up to Parallelism() goroutines. body must be safe to call
// concurrently on disjoint ranges. Work smaller than grain elements runs
// inline to avoid goroutine overhead on tiny tensors.
func parallelFor(n, grain int, body func(lo, hi int)) {
	workers := Parallelism()
	if workers <= 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks < workers {
		workers = chunks
	}
	var wg sync.WaitGroup
	// Chunk size honours the grain: splitting n evenly across workers could
	// otherwise produce sub-grain chunks (small n, many workers), paying
	// goroutine overhead for less work than the kernel's stated minimum.
	per := max((n+workers-1)/workers, grain)
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= n {
			break
		}
		hi := min(lo+per, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
