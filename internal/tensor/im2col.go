package tensor

// ConvGeom captures the spatial geometry of a 2-D convolution. It covers
// strided, padded and dilated ("atrous", in the paper's DeepLabv3+
// terminology) convolutions.
type ConvGeom struct {
	InH, InW         int // input spatial size
	KH, KW           int // kernel size
	StrideH, StrideW int
	PadH, PadW       int // symmetric zero padding
	DilH, DilW       int // dilation (1 = dense convolution)
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int {
	eff := (g.KH-1)*g.DilH + 1
	return (g.InH+2*g.PadH-eff)/g.StrideH + 1
}

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int {
	eff := (g.KW-1)*g.DilW + 1
	return (g.InW+2*g.PadW-eff)/g.StrideW + 1
}

// SamePad returns the padding that keeps outSize == ceil(inSize/stride) for
// the given kernel/dilation, i.e. TensorFlow "SAME" padding (symmetric
// approximation: the left/top share of the total pad).
func SamePad(k, dil int) int {
	eff := (k-1)*dil + 1
	return (eff - 1) / 2
}

// Im2col expands an input image (C×H×W, single batch element, stored
// contiguously in src) into a column matrix dst of shape
// (C*KH*KW) × (OutH*OutW), the layout consumed by the GEMM convolution
// path. Out-of-bounds (padding) taps contribute zeros.
func Im2col(src []float32, c int, g ConvGeom, dst []float32) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	if len(dst) < c*g.KH*g.KW*cols {
		panic("tensor: Im2col dst too small")
	}
	// Serial fast path: skip the closure (which escapes to the heap) when
	// no fan-out can happen — this keeps the pooled hot loop allocation-free.
	if Parallelism() <= 1 || c <= 1 {
		im2colRange(src, c, g, dst, 0, c)
		return
	}
	parallelFor(c, 1, func(clo, chi int) {
		im2colRange(src, c, g, dst, clo, chi)
	})
}

func im2colRange(src []float32, c int, g ConvGeom, dst []float32, clo, chi int) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	for ch := clo; ch < chi; ch++ {
		chanSrc := src[ch*g.InH*g.InW:]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := dst[((ch*g.KH+kh)*g.KW+kw)*cols:]
				ih0 := kh*g.DilH - g.PadH
				iw0 := kw*g.DilW - g.PadW
				for oh := 0; oh < outH; oh++ {
					ih := ih0 + oh*g.StrideH
					dstRow := row[oh*outW : oh*outW+outW]
					if ih < 0 || ih >= g.InH {
						clear(dstRow)
						continue
					}
					srcRow := chanSrc[ih*g.InW : ih*g.InW+g.InW]
					if g.StrideW == 1 {
						// Stride-1: the valid span is one contiguous copy;
						// only the padded edge columns are zeroed.
						lo := min(outW, max(0, -iw0))
						hi := min(outW, g.InW-iw0)
						clear(dstRow[:lo])
						if hi > lo {
							copy(dstRow[lo:hi], srcRow[iw0+lo:iw0+hi])
						}
						clear(dstRow[max(lo, hi):])
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := iw0 + ow*g.StrideW
						if iw < 0 || iw >= g.InW {
							dstRow[ow] = 0
						} else {
							dstRow[ow] = srcRow[iw]
						}
					}
				}
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatters (accumulates) the column
// matrix src of shape (C*KH*KW) × (OutH*OutW) back into a C×H×W image dst.
// dst is accumulated into, not overwritten, so the caller usually zeroes it
// first; this matches the gradient-accumulation semantics of backprop.
func Col2im(src []float32, c int, g ConvGeom, dst []float32) {
	if len(dst) < c*g.InH*g.InW {
		panic("tensor: Col2im dst too small")
	}
	// Channels are independent, so the scatter parallelizes safely over them.
	if Parallelism() <= 1 || c <= 1 {
		col2imRange(src, c, g, dst, 0, c)
		return
	}
	parallelFor(c, 1, func(clo, chi int) {
		col2imRange(src, c, g, dst, clo, chi)
	})
}

func col2imRange(src []float32, c int, g ConvGeom, dst []float32, clo, chi int) {
	outH, outW := g.OutH(), g.OutW()
	cols := outH * outW
	for ch := clo; ch < chi; ch++ {
		chanDst := dst[ch*g.InH*g.InW:]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := src[((ch*g.KH+kh)*g.KW+kw)*cols:]
				ih0 := kh*g.DilH - g.PadH
				iw0 := kw*g.DilW - g.PadW
				for oh := 0; oh < outH; oh++ {
					ih := ih0 + oh*g.StrideH
					if ih < 0 || ih >= g.InH {
						continue
					}
					srcRow := row[oh*outW : oh*outW+outW]
					dstRow := chanDst[ih*g.InW : ih*g.InW+g.InW]
					if g.StrideW == 1 {
						// Stride-1: accumulate the single valid span with
						// no per-element bounds tests.
						lo := min(outW, max(0, -iw0))
						hi := min(outW, g.InW-iw0)
						if hi > lo {
							dr := dstRow[iw0+lo:]
							for ow, v := range srcRow[lo:hi] {
								dr[ow] += v
							}
						}
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := iw0 + ow*g.StrideW
						if iw >= 0 && iw < g.InW {
							dstRow[iw] += srcRow[ow]
						}
					}
				}
			}
		}
	}
}
