package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool is a size-class buffer pool for kernel workspaces and activation
// storage. It exists because the training hot path used to allocate every
// activation, gradient, and im2col buffer afresh on every step, making the
// step allocator- and GC-bound instead of FLOP-bound (the problem cuDNN's
// workspace API solves on real GPUs).
//
// Small buffers are binned by rounding the requested length up to the next
// power of two, so a freed buffer can serve any later request in the same
// class. Large buffers (above poolExactAlloc elements) are allocated at
// their exact length — rounding a big activation to its class could
// reserve nearly 2× the memory — and binned by exact capacity, which
// reuses perfectly in training loops where the same shapes recur every
// step.
//
// Pool is safe for concurrent use. The zero value is not usable; construct
// with NewPool. Separate side pools serve the float64 and int32 scratch
// that batch-norm statistics and pooling index maps need.
type Pool struct {
	mu   sync.Mutex
	f32  bins[float32]
	f64  bins[float64]
	i32  bins[int32]
	i8   bins[int8]
	free []*Tensor // recycled tensor headers (struct + shape storage)

	gets   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
	bytes  atomic.Uint64 // bytes newly allocated on misses
}

// PoolStats is a snapshot of a pool's traffic counters.
type PoolStats struct {
	Gets   uint64 // buffer requests served
	Misses uint64 // requests that had to allocate fresh memory
	Puts   uint64 // buffers returned for reuse
	Bytes  uint64 // bytes newly allocated on misses
}

// Reuses returns the number of requests served without allocating.
func (s PoolStats) Reuses() uint64 { return s.Gets - s.Misses }

// Add returns the sum of two snapshots (merging per-rank pools).
func (s PoolStats) Add(o PoolStats) PoolStats {
	return PoolStats{
		Gets:   s.Gets + o.Gets,
		Misses: s.Misses + o.Misses,
		Puts:   s.Puts + o.Puts,
		Bytes:  s.Bytes + o.Bytes,
	}
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		f32: newBins[float32](),
		f64: newBins[float64](),
		i32: newBins[int32](),
		i8:  newBins[int8](),
	}
}

// defaultPool backs package-internal scratch (GEMM packing panels) and any
// Workspace built with NewWorkspace(nil).
var defaultPool = NewPool()

// DefaultPool returns the shared package-level pool.
func DefaultPool() *Pool { return defaultPool }

// sizeClass returns the power-of-two bin for a request of n elements.
func sizeClass(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// poolExactAlloc is the element count above which buffers are allocated
// and binned at exact length instead of power-of-two class capacity.
const poolExactAlloc = 1 << 14

// bins holds the free lists of one element type: power-of-two classes for
// small buffers, exact-capacity bins for large ones. Synchronization is
// the owning Pool's responsibility.
type bins[T any] struct {
	classes map[uint][][]T
	exact   map[int][][]T
}

func newBins[T any]() bins[T] {
	return bins[T]{classes: make(map[uint][][]T), exact: make(map[int][][]T)}
}

// take pops a free buffer able to hold n elements, or returns false.
func (b *bins[T]) take(n int) ([]T, bool) {
	if n > poolExactAlloc {
		if lst := b.exact[n]; len(lst) > 0 {
			buf := lst[len(lst)-1]
			b.exact[n] = lst[:len(lst)-1]
			return buf[:n], true
		}
		return nil, false
	}
	cls := sizeClass(n)
	if lst := b.classes[cls]; len(lst) > 0 {
		buf := lst[len(lst)-1]
		b.classes[cls] = lst[:len(lst)-1]
		return buf[:n], true
	}
	return nil, false
}

// give returns a buffer to the appropriate free list, binning by capacity.
func (b *bins[T]) give(buf []T) {
	c := cap(buf)
	if c > poolExactAlloc {
		b.exact[c] = append(b.exact[c], buf[:0])
		return
	}
	// Bin by capacity so a trimmed slice re-enters its original class; a
	// non-power-of-two capacity (a foreign, GC-allocated buffer adopted by
	// the executor) bins one class down so take never over-slices it.
	cls := sizeClass(c)
	if 1<<cls != c {
		cls--
	}
	b.classes[cls] = append(b.classes[cls], buf[:0])
}

// allocCap returns the capacity to allocate for a fresh buffer of n
// elements: the full class for small buffers, exact length for large ones.
func allocCap(n int) int {
	if c := 1 << sizeClass(n); c <= poolExactAlloc {
		return c
	}
	return n
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Gets:   p.gets.Load(),
		Misses: p.misses.Load(),
		Puts:   p.puts.Load(),
		Bytes:  p.bytes.Load(),
	}
}

// GetF32 returns a float32 buffer of length n with unspecified contents.
// Callers that need zeroed memory use GetF32Zeroed.
func (p *Pool) GetF32(n int) []float32 {
	p.gets.Add(1)
	if n == 0 {
		return nil
	}
	p.mu.Lock()
	if buf, ok := p.f32.take(n); ok {
		p.mu.Unlock()
		return buf
	}
	p.mu.Unlock()
	p.misses.Add(1)
	capN := allocCap(n)
	p.bytes.Add(uint64(4) * uint64(capN))
	return make([]float32, n, capN)
}

// GetF32Zeroed returns a zero-filled float32 buffer of length n.
func (p *Pool) GetF32Zeroed(n int) []float32 {
	buf := p.GetF32(n)
	clear(buf)
	return buf
}

// PutF32 returns a buffer to the pool. The caller must not retain any
// reference (including tensors built over it); nil and zero-length buffers
// are ignored.
func (p *Pool) PutF32(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	p.puts.Add(1)
	p.mu.Lock()
	p.f32.give(buf)
	p.mu.Unlock()
}

// GetF64 returns a float64 scratch buffer of length n (unspecified contents).
func (p *Pool) GetF64(n int) []float64 {
	p.gets.Add(1)
	if n == 0 {
		return nil
	}
	p.mu.Lock()
	if buf, ok := p.f64.take(n); ok {
		p.mu.Unlock()
		return buf
	}
	p.mu.Unlock()
	p.misses.Add(1)
	capN := allocCap(n)
	p.bytes.Add(uint64(8) * uint64(capN))
	return make([]float64, n, capN)
}

// PutF64 returns a float64 buffer to the pool.
func (p *Pool) PutF64(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	p.puts.Add(1)
	p.mu.Lock()
	p.f64.give(buf)
	p.mu.Unlock()
}

// GetI32 returns an int32 scratch buffer of length n (unspecified contents).
func (p *Pool) GetI32(n int) []int32 {
	p.gets.Add(1)
	if n == 0 {
		return nil
	}
	p.mu.Lock()
	if buf, ok := p.i32.take(n); ok {
		p.mu.Unlock()
		return buf
	}
	p.mu.Unlock()
	p.misses.Add(1)
	capN := allocCap(n)
	p.bytes.Add(uint64(4) * uint64(capN))
	return make([]int32, n, capN)
}

// PutI32 returns an int32 buffer to the pool.
func (p *Pool) PutI32(buf []int32) {
	if cap(buf) == 0 {
		return
	}
	p.puts.Add(1)
	p.mu.Lock()
	p.i32.give(buf)
	p.mu.Unlock()
}

// GetI8 returns an int8 scratch buffer of length n (unspecified contents) —
// quantized activation panels for the INT8 inference kernels.
func (p *Pool) GetI8(n int) []int8 {
	p.gets.Add(1)
	if n == 0 {
		return nil
	}
	p.mu.Lock()
	if buf, ok := p.i8.take(n); ok {
		p.mu.Unlock()
		return buf
	}
	p.mu.Unlock()
	p.misses.Add(1)
	capN := allocCap(n)
	p.bytes.Add(uint64(capN))
	return make([]int8, n, capN)
}

// PutI8 returns an int8 buffer to the pool.
func (p *Pool) PutI8(buf []int8) {
	if cap(buf) == 0 {
		return
	}
	p.puts.Add(1)
	p.mu.Lock()
	p.i8.give(buf)
	p.mu.Unlock()
}

// newHeader returns a recycled (or fresh) tensor header with the given
// shape copied into its reusable shape storage.
func (p *Pool) newHeader(shape Shape) *Tensor {
	p.mu.Lock()
	var t *Tensor
	if n := len(p.free); n > 0 {
		t = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if t == nil {
		t = &Tensor{}
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// NewTensor returns a zero-filled tensor whose storage comes from the pool.
// Release it with ReleaseTensor when it is dead.
func (p *Pool) NewTensor(shape Shape) *Tensor {
	t := p.newHeader(shape)
	t.data = p.GetF32Zeroed(shape.NumElements())
	return t
}

// NewTensorUninit returns a pooled tensor with unspecified contents, for
// outputs every element of which the caller will overwrite.
func (p *Pool) NewTensorUninit(shape Shape) *Tensor {
	t := p.newHeader(shape)
	t.data = p.GetF32(shape.NumElements())
	return t
}

// ReleaseTensor returns a tensor's storage — and its header — to the pool.
// The tensor (and any view sharing its data) must not be used afterwards:
// both the buffer and the *Tensor itself will be handed to later NewTensor
// calls.
func (p *Pool) ReleaseTensor(t *Tensor) {
	if t == nil {
		return
	}
	p.PutF32(t.data)
	t.data = nil
	p.mu.Lock()
	p.free = append(p.free, t)
	p.mu.Unlock()
}

// Workspace is a per-call scratch allocator handed to scratch-aware kernels
// (graph.ScratchOp): im2col/col2im panels, batch-norm temporaries, fused-op
// staging, and op outputs all draw from its pool instead of the Go heap.
// A Workspace is a thin view over a Pool; it is safe for concurrent use to
// the extent the pool is.
type Workspace struct {
	pool *Pool
}

// NewWorkspace returns a workspace over the given pool (nil → DefaultPool).
func NewWorkspace(p *Pool) *Workspace {
	if p == nil {
		p = defaultPool
	}
	return &Workspace{pool: p}
}

// Pool returns the backing pool.
func (w *Workspace) Pool() *Pool { return w.pool }

// GetF32 returns scratch of length n (unspecified contents).
func (w *Workspace) GetF32(n int) []float32 { return w.pool.GetF32(n) }

// GetF32Zeroed returns zero-filled scratch of length n.
func (w *Workspace) GetF32Zeroed(n int) []float32 { return w.pool.GetF32Zeroed(n) }

// PutF32 releases scratch obtained from GetF32/GetF32Zeroed.
func (w *Workspace) PutF32(buf []float32) { w.pool.PutF32(buf) }

// GetF64 returns float64 scratch (unspecified contents).
func (w *Workspace) GetF64(n int) []float64 { return w.pool.GetF64(n) }

// PutF64 releases float64 scratch.
func (w *Workspace) PutF64(buf []float64) { w.pool.PutF64(buf) }

// GetI32 returns int32 scratch (unspecified contents).
func (w *Workspace) GetI32(n int) []int32 { return w.pool.GetI32(n) }

// PutI32 releases int32 scratch.
func (w *Workspace) PutI32(buf []int32) { w.pool.PutI32(buf) }

// GetI8 returns int8 scratch (unspecified contents).
func (w *Workspace) GetI8(n int) []int8 { return w.pool.GetI8(n) }

// PutI8 releases int8 scratch.
func (w *Workspace) PutI8(buf []int8) { w.pool.PutI8(buf) }

// NewTensor returns a zero-filled pooled tensor (see Pool.NewTensor).
func (w *Workspace) NewTensor(shape Shape) *Tensor { return w.pool.NewTensor(shape) }

// NewTensorUninit returns a pooled tensor with unspecified contents.
func (w *Workspace) NewTensorUninit(shape Shape) *Tensor { return w.pool.NewTensorUninit(shape) }

// Release returns a tensor's storage to the pool.
func (w *Workspace) Release(t *Tensor) { w.pool.ReleaseTensor(t) }
