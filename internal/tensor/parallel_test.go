package tensor

import (
	"sync"
	"testing"
)

// TestParallelForChunksRespectGrain covers the chunk-sizing rule: even with
// many workers and small n, no chunk may be smaller than the grain (except
// the final remainder chunk), and every index is visited exactly once.
func TestParallelForChunksRespectGrain(t *testing.T) {
	prev := SetParallelism(8)
	defer SetParallelism(prev)

	for _, tc := range []struct{ n, grain int }{
		{100, 64},  // 2 chunks of ≥64, not 8 chunks of 13
		{65, 64},   // just over one grain
		{640, 64},  // even split across workers
		{7, 64},    // below grain: runs inline
		{1000, 1},  // grain 1: worker-count chunks
		{8, 3},     // sub-worker chunk count
		{4096, 64}, // large
	} {
		var mu sync.Mutex
		visited := make([]int, tc.n)
		var spans [][2]int
		parallelFor(tc.n, tc.grain, func(lo, hi int) {
			mu.Lock()
			spans = append(spans, [2]int{lo, hi})
			mu.Unlock()
			for i := lo; i < hi; i++ {
				mu.Lock()
				visited[i]++
				mu.Unlock()
			}
		})
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("n=%d grain=%d: index %d visited %d times", tc.n, tc.grain, i, v)
			}
		}
		for _, s := range spans {
			size := s[1] - s[0]
			if size < tc.grain && s[1] != tc.n {
				t.Errorf("n=%d grain=%d: non-final chunk [%d,%d) smaller than grain",
					tc.n, tc.grain, s[0], s[1])
			}
		}
	}
}

func TestSetParallelismClampsToOne(t *testing.T) {
	prev := SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3)", Parallelism())
	}
	SetParallelism(prev)
}
