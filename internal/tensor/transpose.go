package tensor

import "fmt"

// NCHWToNHWC converts a [N,C,H,W] tensor into [N,H,W,C] layout. TensorFlow
// inserts exactly this kind of layout change between NHWC-preferring ops
// and cuDNN's NCHW kernels; the paper's profiles bill it under
// "Copies/Transposes" and its removal from the DeepLabv3+ decoder bought
// 10% at full scale.
func NCHWToNHWC(x *Tensor) *Tensor {
	s := x.Shape()
	if s.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NCHWToNHWC wants rank 4, got %v", s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	out := New(Shape{n, h, w, c})
	xd, od := x.Data(), out.Data()
	parallelFor(n*h, 8, func(lo, hi int) {
		for nh := lo; nh < hi; nh++ {
			img, y := nh/h, nh%h
			for xw := 0; xw < w; xw++ {
				dst := ((img*h+y)*w + xw) * c
				for ch := 0; ch < c; ch++ {
					od[dst+ch] = xd[((img*c+ch)*h+y)*w+xw]
				}
			}
		}
	})
	return out
}

// NHWCToNCHW converts a [N,H,W,C] tensor back to [N,C,H,W].
func NHWCToNCHW(x *Tensor) *Tensor {
	s := x.Shape()
	if s.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NHWCToNCHW wants rank 4, got %v", s))
	}
	n, h, w, c := s[0], s[1], s[2], s[3]
	out := New(Shape{n, c, h, w})
	xd, od := x.Data(), out.Data()
	parallelFor(n*c, 8, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			img, ch := nc/c, nc%c
			for y := 0; y < h; y++ {
				for xw := 0; xw < w; xw++ {
					od[((img*c+ch)*h+y)*w+xw] = xd[((img*h+y)*w+xw)*c+ch]
				}
			}
		}
	})
	return out
}
