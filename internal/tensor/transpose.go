package tensor

import "fmt"

// NCHWToNHWC converts a [N,C,H,W] tensor into [N,H,W,C] layout. TensorFlow
// inserts exactly this kind of layout change between NHWC-preferring ops
// and cuDNN's NCHW kernels; the paper's profiles bill it under
// "Copies/Transposes" and its removal from the DeepLabv3+ decoder bought
// 10% at full scale.
func NCHWToNHWC(x *Tensor) *Tensor {
	s := x.Shape()
	if s.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NCHWToNHWC wants rank 4, got %v", s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	out := New(Shape{n, h, w, c})
	NCHWToNHWCInto(x.Data(), n, c, h, w, out.Data())
	return out
}

// NCHWToNHWCInto performs the layout change into caller-provided storage
// (e.g. a workspace scratch buffer), writing every element of dst.
func NCHWToNHWCInto(xd []float32, n, c, h, w int, dst []float32) {
	parallelFor(n*h, 8, func(lo, hi int) {
		for nh := lo; nh < hi; nh++ {
			img, y := nh/h, nh%h
			for xw := 0; xw < w; xw++ {
				d := ((img*h+y)*w + xw) * c
				for ch := 0; ch < c; ch++ {
					dst[d+ch] = xd[((img*c+ch)*h+y)*w+xw]
				}
			}
		}
	})
}

// NHWCToNCHW converts a [N,H,W,C] tensor back to [N,C,H,W].
func NHWCToNCHW(x *Tensor) *Tensor {
	s := x.Shape()
	if s.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NHWCToNCHW wants rank 4, got %v", s))
	}
	n, h, w, c := s[0], s[1], s[2], s[3]
	out := New(Shape{n, c, h, w})
	NHWCToNCHWInto(x.Data(), n, c, h, w, out.Data())
	return out
}

// NHWCToNCHWInto performs the inverse layout change into caller-provided
// storage, writing every element of dst.
func NHWCToNCHWInto(xd []float32, n, c, h, w int, dst []float32) {
	parallelFor(n*c, 8, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			img, ch := nc/c, nc%c
			for y := 0; y < h; y++ {
				for xw := 0; xw < w; xw++ {
					dst[((img*c+ch)*h+y)*w+xw] = xd[((img*h+y)*w+xw)*c+ch]
				}
			}
		}
	})
}
