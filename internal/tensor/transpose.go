package tensor

import "fmt"

// NCHWToNHWC converts a [N,C,H,W] tensor into [N,H,W,C] layout. TensorFlow
// inserts exactly this kind of layout change between NHWC-preferring ops
// and cuDNN's NCHW kernels; the paper's profiles bill it under
// "Copies/Transposes" and its removal from the DeepLabv3+ decoder bought
// 10% at full scale.
func NCHWToNHWC(x *Tensor) *Tensor {
	s := x.Shape()
	if s.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NCHWToNHWC wants rank 4, got %v", s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	out := New(Shape{n, h, w, c})
	NCHWToNHWCInto(x.Data(), n, c, h, w, out.Data())
	return out
}

// NCHWToNHWCInto performs the layout change into caller-provided storage
// (e.g. a workspace scratch buffer), writing every element of dst. Per
// image this is a plain C×(H·W) matrix transpose, so it rides the blocked
// TransposeF32 kernel (8×8 in-register tiles under AVX2).
func NCHWToNHWCInto(xd []float32, n, c, h, w int, dst []float32) {
	hw := h * w
	parallelFor(n, 1, func(lo, hi int) {
		for img := lo; img < hi; img++ {
			TransposeF32(xd[img*c*hw:(img+1)*c*hw], c, hw, dst[img*c*hw:(img+1)*c*hw])
		}
	})
}

// NHWCToNCHW converts a [N,H,W,C] tensor back to [N,C,H,W].
func NHWCToNCHW(x *Tensor) *Tensor {
	s := x.Shape()
	if s.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NHWCToNCHW wants rank 4, got %v", s))
	}
	n, h, w, c := s[0], s[1], s[2], s[3]
	out := New(Shape{n, c, h, w})
	NHWCToNCHWInto(x.Data(), n, c, h, w, out.Data())
	return out
}

// NHWCToNCHWInto performs the inverse layout change into caller-provided
// storage, writing every element of dst — per image an (H·W)×C transpose.
func NHWCToNCHWInto(xd []float32, n, c, h, w int, dst []float32) {
	hw := h * w
	parallelFor(n, 1, func(lo, hi int) {
		for img := lo; img < hi; img++ {
			TransposeF32(xd[img*c*hw:(img+1)*c*hw], hw, c, dst[img*c*hw:(img+1)*c*hw])
		}
	})
}

// TransposeF32 writes the transpose of the rows×cols row-major matrix src
// into dst: dst[j*rows+i] = src[i*cols+j]. Pure data movement, bit-exact
// under every ISA; the AVX2 path moves 8×8 tiles entirely in registers
// (unpack → shuffle → 128-bit lane swap), turning a stride-c scatter into
// contiguous line-width stores.
func TransposeF32(src []float32, rows, cols int, dst []float32) {
	if len(src) < rows*cols || len(dst) < rows*cols {
		panic(fmt.Sprintf("tensor: TransposeF32 needs %d elements, have src %d dst %d",
			rows*cols, len(src), len(dst)))
	}
	if simdTranspose(src, rows, cols, dst) {
		return
	}
	for i := 0; i < rows; i++ {
		row := src[i*cols : (i+1)*cols]
		for j, v := range row {
			dst[j*rows+i] = v
		}
	}
}
