package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNCHWToNHWCKnown(t *testing.T) {
	// 1 batch, 2 channels, 2×2 spatial.
	x := FromSlice(NCHW(1, 2, 2, 2), []float32{
		// channel 0
		1, 2,
		3, 4,
		// channel 1
		5, 6,
		7, 8,
	})
	y := NCHWToNHWC(x)
	if !y.Shape().Equal(Shape{1, 2, 2, 2}) {
		t.Fatalf("shape %v", y.Shape())
	}
	// NHWC order: (y=0,x=0,c=0..1), (y=0,x=1,...), ...
	want := []float32{1, 5, 2, 6, 3, 7, 4, 8}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("NHWC[%d] = %g want %g (full %v)", i, y.Data()[i], v, y.Data())
		}
	}
}

func TestLayoutRoundTripIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(3), 1+rng.Intn(5)
		h, w := 1+rng.Intn(6), 1+rng.Intn(6)
		x := RandNormal(NCHW(n, c, h, w), 0, 1, rng)
		back := NHWCToNCHW(NCHWToNHWC(x))
		if !back.Shape().Equal(x.Shape()) {
			return false
		}
		for i, v := range x.Data() {
			if back.Data()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeRankValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank-2 input should panic")
		}
	}()
	NCHWToNHWC(New(Shape{2, 3}))
}
