package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/simd"
)

// Kernel parity suite for the AVX2 GEMM micro-kernels. The precision
// contract: each C element is one accumulation chain; the vector kernel
// may reassociate it but must stay within 4·ULP of the exact (float64)
// chain, where the ULP scale is the chain's magnitude Σ|a|·|b| (+ the
// beta·C term). INT8 and pure elementwise kernels have no tolerance at
// all — they must be bit-identical across ISAs.

func withISA(t *testing.T, isa KernelISA) func() {
	t.Helper()
	prev, err := SetKernelISA(isa)
	if err != nil {
		t.Skipf("ISA %v unavailable: %v", isa, err)
	}
	return func() { SetKernelISA(prev) }
}

// refGemmBound computes the float64 reference result and a per-element
// error budget: 4·eps32 scaled by the chain magnitude.
func refGemmBound(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c0 []float32, ldc int) (ref, bound []float64) {
	const eps32 = 1.0 / (1 << 23)
	ref = make([]float64, m*n)
	bound = make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum, mag float64
			for p := 0; p < k; p++ {
				var av, bv float64
				if transA {
					av = float64(a[p*lda+i])
				} else {
					av = float64(a[i*lda+p])
				}
				if transB {
					bv = float64(b[j*ldb+p])
				} else {
					bv = float64(b[p*ldb+j])
				}
				sum += av * bv
				mag += math.Abs(av * bv)
			}
			sum *= float64(alpha)
			mag *= math.Abs(float64(alpha))
			if beta != 0 {
				prev := float64(beta) * float64(c0[i*ldc+j])
				sum += prev
				mag += math.Abs(prev)
			}
			ref[i*n+j] = sum
			// 4 ULP per accumulation chain, plus one rounding of the result
			// itself and an absolute floor for near-cancellation.
			bound[i*n+j] = 4*eps32*mag + eps32*math.Abs(sum) + 1e-30
		}
	}
	return ref, bound
}

// TestGemmAVX2KernelParity exercises the blocked AVX2 path directly
// (bypassing the small-path dispatch) on every edge-tile geometry
// m, n ∈ {1..2·MR, 1..2·NR} for all four transpose variants and both beta
// classes, checking the ≤4·ULP-per-chain contract against the float64
// reference. K values cover sub-quad tails, strip widths, and a multi-K
// cache-block case.
func TestGemmAVX2KernelParity(t *testing.T) {
	restore := withISA(t, ISAAVX2)
	defer restore()
	rng := rand.New(rand.NewSource(41))
	kvals := []int{1, 2, 5, 8, 16, avxKC + 3}
	if testing.Short() {
		kvals = []int{1, 5, 16}
	}
	for _, trans := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		transA, transB := trans[0], trans[1]
		for m := 1; m <= 2*avxMR; m++ {
			for n := 1; n <= 2*avxNR; n += 3 {
				for _, k := range kvals {
					for _, ab := range [][2]float32{{1, 0}, {-1.5, 0.75}} {
						alpha, beta := ab[0], ab[1]
						lda, ldb := k, n
						if transA {
							lda = m
						}
						if transB {
							ldb = k
						}
						a := randomSlice(rng, m*k)
						b := randomSlice(rng, k*n)
						c := randomSlice(rng, m*n)
						ref, bound := refGemmBound(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, n)
						gemmBlockedAVX2(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, n)
						for i := range ref {
							if diff := math.Abs(float64(c[i]) - ref[i]); diff > bound[i] {
								t.Fatalf("tA=%v tB=%v m=%d n=%d k=%d α=%g β=%g: C[%d]=%g ref=%g diff=%g > bound %g",
									transA, transB, m, n, k, alpha, beta, i, c[i], ref[i], diff, bound[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestGemmAVX2ZeroDims pins the degenerate contracts on the AVX2 path:
// zero m/n are no-ops, alpha==0 and k==0 only scale C.
func TestGemmAVX2ZeroDims(t *testing.T) {
	restore := withISA(t, ISAAVX2)
	defer restore()
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 2, 3, 4}
	Gemm(false, false, 0, 2, 2, 1, a, 2, b, 2, 0, c, 2)
	Gemm(false, false, 2, 0, 2, 1, a, 2, b, 2, 0, c, 2)
	if c[0] != 1 || c[3] != 4 {
		t.Fatalf("zero-dim Gemm touched C: %v", c)
	}
	Gemm(false, false, 2, 2, 0, 1, a, 2, b, 2, 2, c, 2)
	if c[0] != 2 || c[3] != 8 {
		t.Fatalf("k=0 Gemm should scale C by beta: %v", c)
	}
}

// TestGemmWithinISADeterminism: the bit-exact-resume contract pins one ISA
// per run; under a pinned ISA, repeated identical GEMMs must produce
// bit-identical output (no data races, no nondeterministic reduction
// order from the worker pool).
func TestGemmWithinISADeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n, k := 37, 53, avxKC+9
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	for _, isa := range []KernelISA{ISAScalar, ISAAVX2} {
		restore := withISA(t, isa)
		first := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1.25, a, k, b, n, 0, first, n)
		for trial := 0; trial < 3; trial++ {
			c := make([]float32, m*n)
			Gemm(false, false, m, n, k, 1.25, a, k, b, n, 0, c, n)
			for i := range c {
				if math.Float32bits(c[i]) != math.Float32bits(first[i]) {
					t.Fatalf("ISA %v trial %d: C[%d] = %x, first run %x",
						isa, trial, i, math.Float32bits(c[i]), math.Float32bits(first[i]))
				}
			}
		}
		restore()
	}
}

// TestGemmInt8ISAParity: integer kernels carry no tolerance — the AVX2
// VPMOVSXBD/VPMULLD/VPADDD path must be bit-identical to the scalar quad
// loop, including rows with all-zero weight quads (the skip path) and the
// n%8 tail.
func TestGemmInt8ISAParity(t *testing.T) {
	if !simd.HasAVX2() {
		t.Skip("AVX2 unavailable")
	}
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ m, n, k int }{
		{1, 1, 1}, {3, 7, 5}, {5, 8, 12}, {4, 9, 16}, {16, 33, 64}, {8, 100, 31},
	} {
		a := make([]int8, tc.m*tc.k)
		bm := make([]int8, tc.k*tc.n)
		scales := make([]float32, tc.m)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
		}
		// Force some all-zero quads to exercise the skip path.
		for p := 0; p+3 < tc.k; p += 8 {
			for i := 0; i < tc.m; i++ {
				a[i*tc.k+p], a[i*tc.k+p+1], a[i*tc.k+p+2], a[i*tc.k+p+3] = 0, 0, 0, 0
			}
		}
		for i := range bm {
			bm[i] = int8(rng.Intn(255) - 127)
		}
		for i := range scales {
			scales[i] = float32(rng.NormFloat64())
		}
		bScale := float32(0.031)

		got := make([]float32, tc.m*tc.n)
		want := make([]float32, tc.m*tc.n)
		restore := withISA(t, ISAAVX2)
		GemmInt8(tc.m, tc.n, tc.k, a, scales, bm, bScale, got)
		restore()
		restore = withISA(t, ISAScalar)
		GemmInt8(tc.m, tc.n, tc.k, a, scales, bm, bScale, want)
		restore()
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("m=%d n=%d k=%d: C[%d] avx2 %x scalar %x",
					tc.m, tc.n, tc.k, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// TestElementwiseISAParity: Axpy/Scale/ScaleAllFinite use mul+add vector
// forms — bit-identical to the scalar loops for every length/alignment,
// including non-finite inputs.
func TestElementwiseISAParity(t *testing.T) {
	if !simd.HasAVX2() {
		t.Skip("AVX2 unavailable")
	}
	rng := rand.New(rand.NewSource(29))
	for _, n := range []int{0, 1, 7, 15, 16, 17, 31, 63, 64, 100, 4097} {
		x := randomSlice(rng, n)
		y0 := randomSlice(rng, n)
		if n > 3 {
			x[n/2] = float32(math.Inf(1))
			x[n/3] = float32(math.NaN())
		}

		ya := append([]float32(nil), y0...)
		ys := append([]float32(nil), y0...)
		restore := withISA(t, ISAAVX2)
		Axpy(1.7, x, ya)
		restore()
		restore = withISA(t, ISAScalar)
		Axpy(1.7, x, ys)
		restore()
		for i := range ya {
			if math.Float32bits(ya[i]) != math.Float32bits(ys[i]) {
				t.Fatalf("Axpy n=%d elem %d: avx2 %x scalar %x", n, i,
					math.Float32bits(ya[i]), math.Float32bits(ys[i]))
			}
		}

		xa := append([]float32(nil), x...)
		xs := append([]float32(nil), x...)
		restore = withISA(t, ISAAVX2)
		Scale(-0.3, xa)
		restore()
		restore = withISA(t, ISAScalar)
		Scale(-0.3, xs)
		restore()
		for i := range xa {
			if math.Float32bits(xa[i]) != math.Float32bits(xs[i]) {
				t.Fatalf("Scale n=%d elem %d: avx2 %x scalar %x", n, i,
					math.Float32bits(xa[i]), math.Float32bits(xs[i]))
			}
		}

		fa := append([]float32(nil), x...)
		fs := append([]float32(nil), x...)
		restore = withISA(t, ISAAVX2)
		oka := ScaleAllFinite(0.5, fa)
		restore()
		restore = withISA(t, ISAScalar)
		oks := ScaleAllFinite(0.5, fs)
		restore()
		if oka != oks {
			t.Fatalf("ScaleAllFinite n=%d: verdict avx2 %v scalar %v", n, oka, oks)
		}
		for i := range fa {
			if math.Float32bits(fa[i]) != math.Float32bits(fs[i]) {
				t.Fatalf("ScaleAllFinite n=%d elem %d: avx2 %x scalar %x", n, i,
					math.Float32bits(fa[i]), math.Float32bits(fs[i]))
			}
		}
	}
}

// TestTransposeISAParity: pure data movement must be exactly the identity
// permutation under both ISAs, for edge sizes around the 8×8 tile.
func TestTransposeISAParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {7, 9}, {8, 17}, {16, 16}, {23, 41}, {64, 33}} {
		rows, cols := tc[0], tc[1]
		src := randomSlice(rng, rows*cols)
		dst := make([]float32, rows*cols)
		TransposeF32(src, rows, cols, dst)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if math.Float32bits(dst[j*rows+i]) != math.Float32bits(src[i*cols+j]) {
					t.Fatalf("%dx%d: dst[%d,%d] != src[%d,%d]", rows, cols, j, i, i, j)
				}
			}
		}
	}
}

// TestDotISAParity: the vector Dot keeps float64 accumulation, so the two
// ISAs agree to float64 rounding of the same exact products — a 1-ulp-ish
// relative tolerance, far tighter than any float32 epsilon.
func TestDotISAParity(t *testing.T) {
	if !simd.HasAVX2() {
		t.Skip("AVX2 unavailable")
	}
	rng := rand.New(rand.NewSource(37))
	for _, n := range []int{31, 32, 33, 1000, 4096} {
		x := randomSlice(rng, n)
		y := randomSlice(rng, n)
		restore := withISA(t, ISAAVX2)
		got := Dot(x, y)
		gotN := L2Norm(x)
		restore()
		restore = withISA(t, ISAScalar)
		want := Dot(x, y)
		wantN := L2Norm(x)
		restore()
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("Dot n=%d: avx2 %.17g scalar %.17g", n, got, want)
		}
		if math.Abs(gotN-wantN) > 1e-12*(1+wantN) {
			t.Fatalf("L2Norm n=%d: avx2 %.17g scalar %.17g", n, gotN, wantN)
		}
	}
}
