package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, contiguous, row-major float32 tensor.
//
// The zero value is not usable; construct tensors with New, FromSlice, or
// the initializer helpers (Zeros, Full, RandNormal...).
type Tensor struct {
	shape Shape
	data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(shape Shape) *Tensor {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	return &Tensor{shape: shape.Clone(), data: make([]float32, shape.NumElements())}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(shape Shape, data []float32) *Tensor {
	if shape.NumElements() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d",
			shape, shape.NumElements(), len(data)))
	}
	return &Tensor{shape: shape.Clone(), data: data}
}

// Zeros is an alias for New, named for readability at call sites.
func Zeros(shape Shape) *Tensor { return New(shape) }

// Full returns a tensor with every element set to v.
func Full(shape Shape, v float32) *Tensor {
	t := New(shape)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape Shape) *Tensor { return Full(shape, 1) }

// RandNormal returns a tensor with elements drawn from N(mean, std²).
func RandNormal(shape Shape, mean, std float64, rng *rand.Rand) *Tensor {
	t := New(shape)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()*std + mean)
	}
	return t
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(shape Shape, lo, hi float64, rng *rand.Rand) *Tensor {
	t := New(shape)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// HeInit fills a convolution filter tensor using He-normal initialization,
// the standard scheme for ReLU networks (std = sqrt(2 / fanIn)).
func HeInit(shape Shape, rng *rand.Rand) *Tensor {
	fanIn := 1
	for _, d := range shape[1:] {
		fanIn *= d
	}
	std := math.Sqrt(2 / float64(fanIn))
	return RandNormal(shape, 0, std, rng)
}

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// NumElements returns the element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must match in element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a view sharing data with t but described by newShape.
func (t *Tensor) Reshape(newShape Shape) *Tensor {
	if newShape.NumElements() != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, newShape))
	}
	return &Tensor{shape: newShape.Clone(), data: t.data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() {
	clear(t.data)
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := min(len(t.data), 8)
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}
