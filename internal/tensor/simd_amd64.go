//go:build amd64

package tensor

import "repro/internal/simd"

// Assembly kernel declarations (gemm_avx2_amd64.s, vec_avx2_amd64.s). All
// take raw pointers so the hot paths never bounds-check or escape; the
// dispatch wrappers below own the length math, tail handling, and the
// "is AVX2 actually on" check, so the portable callers in gemm.go and
// elementwise.go stay free of build tags.

//go:noescape
func gemmKern6x16(kc int, ap, bp *float32, alpha, beta float32, mode int, c *float32, ldc int)

//go:noescape
func gemmAcc6x16(kc int, ap, bp, acc *float32)

//go:noescape
func int8AxpyQuad(n int, av *int32, b0, b1, b2, b3 *int8, acc *int32)

//go:noescape
func fmaPeakProbe(iters int)

//go:noescape
func axpyAVX2(alpha float32, x, y *float32, n int)

//go:noescape
func scaleAVX2(alpha float32, x *float32, n int)

//go:noescape
func scaleAllFiniteAVX2(alpha float32, x *float32, n int) int32

//go:noescape
func dotAVX2(x, y *float32, n int) float64

//go:noescape
func transpose8x8AVX2(src *float32, srcStride int, dst *float32, dstStride int)

// simdGemmTile runs the full 6×16 tile with the epilogue in assembly.
// mode: 0 accumulate, 1 overwrite, 2 blend (see gemmBlockedAVX2).
func simdGemmTile(kc int, ap, bp []float32, alpha, beta float32, mode int, c []float32, ldc int) {
	gemmKern6x16(kc, &ap[0], &bp[0], alpha, beta, mode, &c[0], ldc)
}

// simdGemmTileAcc runs the K loop only, leaving the raw 6×16 accumulator
// for the masked Go epilogue on edge tiles.
func simdGemmTileAcc(kc int, ap, bp []float32, acc *[avxMR * avxNR]float32) {
	gemmAcc6x16(kc, &ap[0], &bp[0], &acc[0])
}

// simdInt8AxpyQuad accumulates acc[j] += Σ av[q]*bq[j] over four int8 rows
// and returns how many leading elements were consumed (a multiple of 8;
// 0 when the vector path is off). Exact int32 arithmetic — bit-identical
// to the scalar loop for any consumed prefix.
func simdInt8AxpyQuad(av *[4]int32, b0, b1, b2, b3 []int8, acc []int32) int {
	n := len(acc) &^ 7
	if n == 0 || !simd.UseAVX2() {
		return 0
	}
	int8AxpyQuad(n, &av[0], &b0[0], &b1[0], &b2[0], &b3[0], &acc[0])
	return n
}

// simdAxpy performs y[i] += alpha*x[i] over the whole slices, returning
// false when the caller should run the scalar loop instead. The vector
// body is mul+add, bit-identical to the scalar loop; the tail runs the
// same scalar arithmetic inline.
func simdAxpy(alpha float32, x, y []float32) bool {
	n := len(x)
	if n < 16 || !simd.UseAVX2() {
		return false
	}
	m := n &^ 7
	axpyAVX2(alpha, &x[0], &y[0], m)
	for i := m; i < n; i++ {
		y[i] += alpha * x[i]
	}
	return true
}

// simdScale performs x[i] *= alpha, with the same contract as simdAxpy.
func simdScale(alpha float32, x []float32) bool {
	n := len(x)
	if n < 16 || !simd.UseAVX2() {
		return false
	}
	m := n &^ 7
	scaleAVX2(alpha, &x[0], m)
	for i := m; i < n; i++ {
		x[i] *= alpha
	}
	return true
}

// simdScaleAllFinite fuses x[i] *= alpha with a non-finite check.
// handled=false means the caller must run the scalar path.
func simdScaleAllFinite(alpha float32, x []float32) (ok, handled bool) {
	n := len(x)
	if n < 16 || !simd.UseAVX2() {
		return false, false
	}
	m := n &^ 7
	ok = scaleAllFiniteAVX2(alpha, &x[0], m) == 0
	for i := m; i < n; i++ {
		v := alpha * x[i]
		x[i] = v
		// Same exponent-field test the vector kernel applies.
		if v-v != 0 {
			ok = false
		}
	}
	return ok, true
}

// simdDot returns Σ float64(x[i])·float64(y[i]) with four-lane f64
// accumulation. Per-element arithmetic is exact (float32 products are
// exactly representable in float64); only the summation order differs
// from the scalar loop, so results agree to f64 rounding of the same
// exact sum — cross-ISA tolerance, within-ISA determinism.
func simdDot(x, y []float32) (float64, bool) {
	n := len(x)
	if n < 32 || !simd.UseAVX2() {
		return 0, false
	}
	m := n &^ 7
	sum := dotAVX2(&x[0], &y[0], m)
	for i := m; i < n; i++ {
		sum += float64(x[i]) * float64(y[i])
	}
	return sum, true
}

// simdTranspose writes dst[j*rows+i] = src[i*cols+j] using 8×8 in-register
// tiles, with scalar edges. Pure data movement: bit-exact by construction.
func simdTranspose(src []float32, rows, cols int, dst []float32) bool {
	if rows < 8 || cols < 8 || !simd.UseAVX2() {
		return false
	}
	r8, c8 := rows&^7, cols&^7
	for i := 0; i < r8; i += 8 {
		for j := 0; j < c8; j += 8 {
			transpose8x8AVX2(&src[i*cols+j], cols, &dst[j*rows+i], rows)
		}
		for j := c8; j < cols; j++ {
			for ii := i; ii < i+8; ii++ {
				dst[j*rows+ii] = src[ii*cols+j]
			}
		}
	}
	for i := r8; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[j*rows+i] = src[i*cols+j]
		}
	}
	return true
}

// FMAPeakGFLOPS estimates the core's single-thread FMA peak by timing a
// register-only probe (12 independent 8-lane FMA chains). Returns 0 when
// the AVX2 kernels are unavailable. Bench reports divide measured GEMM
// GFLOP/s by this to report a %-of-peak figure.
func fmaPeakProbeRun(iters int) bool {
	if !simd.HasAVX2() {
		return false
	}
	fmaPeakProbe(iters)
	return true
}
