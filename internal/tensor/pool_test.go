package tensor

import "testing"

func TestPoolReusesBySizeClass(t *testing.T) {
	p := NewPool()
	a := p.GetF32(100) // class 128
	p.PutF32(a)
	b := p.GetF32(120) // same class: must reuse
	if p.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1 (second get should reuse)", p.Stats().Misses)
	}
	if cap(b) != 128 {
		t.Fatalf("cap = %d, want 128", cap(b))
	}
	p.PutF32(b)
	c := p.GetF32(200) // class 256: fresh
	if p.Stats().Misses != 2 {
		t.Fatalf("misses = %d, want 2", p.Stats().Misses)
	}
	p.PutF32(c)

	st := p.Stats()
	if st.Gets != 3 || st.Puts != 3 || st.Reuses() != 1 {
		t.Fatalf("stats = %+v (reuses %d)", st, st.Reuses())
	}
	if st.Bytes != 4*(128+256) {
		t.Fatalf("bytes = %d, want %d", st.Bytes, 4*(128+256))
	}
}

func TestPoolZeroedGet(t *testing.T) {
	p := NewPool()
	a := p.GetF32(64)
	for i := range a {
		a[i] = 42
	}
	p.PutF32(a)
	b := p.GetF32Zeroed(64)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("GetF32Zeroed[%d] = %g", i, v)
		}
	}
}

func TestPoolForeignCapacityBinsSafely(t *testing.T) {
	p := NewPool()
	// A non-power-of-two capacity (e.g. a GC-allocated activation adopted by
	// the executor) must bin below its capacity so a later Get never
	// over-slices it.
	foreign := make([]float32, 100, 100)
	p.PutF32(foreign)
	got := p.GetF32(64) // class 64: the adopted buffer can serve this
	if cap(got) < 64 {
		t.Fatalf("cap = %d, want ≥64", cap(got))
	}
}

func TestPoolTensorRoundTrip(t *testing.T) {
	p := NewPool()
	shape := Shape{2, 3, 4}
	a := p.NewTensor(shape)
	if a.NumElements() != 24 {
		t.Fatalf("elements = %d", a.NumElements())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("NewTensor must be zeroed")
		}
	}
	a.Fill(5)
	p.ReleaseTensor(a)
	b := p.NewTensorUninit(shape)
	if p.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1 (release→reuse)", p.Stats().Misses)
	}
	p.ReleaseTensor(b)
	p.ReleaseTensor(nil) // must not panic
}

func TestWorkspaceSidePools(t *testing.T) {
	ws := NewWorkspace(NewPool())
	f64 := ws.GetF64(16)
	i32 := ws.GetI32(16)
	if len(f64) != 16 || len(i32) != 16 {
		t.Fatal("side pool lengths wrong")
	}
	ws.PutF64(f64)
	ws.PutI32(i32)
	if ws.Pool().Stats().Reuses() != 0 {
		t.Fatal("no reuse expected yet")
	}
	f64b := ws.GetF64(10)
	i32b := ws.GetI32(12)
	if ws.Pool().Stats().Reuses() != 2 {
		t.Fatalf("reuses = %d, want 2", ws.Pool().Stats().Reuses())
	}
	ws.PutF64(f64b)
	ws.PutI32(i32b)
	if NewWorkspace(nil).Pool() != DefaultPool() {
		t.Fatal("nil workspace must fall back to the default pool")
	}
}

func TestPoolLargeBuffersExactReuse(t *testing.T) {
	p := NewPool()
	const n = 1<<14 + 1000 // above the exact-alloc threshold
	a := p.GetF32(n)
	if cap(a) != n {
		t.Fatalf("large alloc cap = %d, want exact %d", cap(a), n)
	}
	p.PutF32(a)
	b := p.GetF32(n) // identical request (recurring training shape): must reuse
	if p.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1 (exact-capacity bin must serve repeats)", p.Stats().Misses)
	}
	p.PutF32(b)
	if got := p.GetF32(n - 1); cap(got) != n-1 {
		t.Fatalf("different large size must allocate exact, got cap %d", cap(got))
	}
}
