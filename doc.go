// Package repro is a from-scratch Go reproduction of "Exascale Deep
// Learning for Climate Analytics" (Kurth et al., SC18, Gordon Bell Prize):
// pixel-level segmentation of extreme weather patterns with Tiramisu and
// DeepLabv3+ networks, scaled by data-parallel training with hierarchical
// collective coordination, hybrid all-reduces, distributed data staging,
// and mixed precision.
//
// The public API is the exaclim package: a functional-options experiment
// layer (exaclim.New, Experiment.Run) with name-based registries for
// networks, optimizers, and loss weightings, streaming observers, context
// cancellation, and the Quickstart/SummitScale presets. The root package
// holds the benchmark harness (bench_test.go): one benchmark per table and
// figure of the paper's evaluation. The library internals live under
// internal/ (see DESIGN.md for the system inventory), the executables
// under cmd/, and runnable examples under examples/.
package repro
