// Package repro is a from-scratch Go reproduction of "Exascale Deep
// Learning for Climate Analytics" (Kurth et al., SC18, Gordon Bell Prize):
// pixel-level segmentation of extreme weather patterns with Tiramisu and
// DeepLabv3+ networks, scaled by data-parallel training with hierarchical
// collective coordination, hybrid all-reduces, distributed data staging,
// and mixed precision — grown, PR by PR, into a production-shaped system.
//
// The public API is the exaclim package; it is the only supported entry
// point, and no binary touches the internals directly. It spans the four
// subsystems the repository has grown:
//
//   - Training: exaclim.New(options...) resolves name-based registries
//     (networks, optimizers, loss weightings) into an Experiment; Run
//     executes synchronous data-parallel training across simulated ranks
//     with workspace-planned execution memory (pooled tensors, packed
//     blocked GEMM, fused kernels) and an overlapped gradient exchange
//     (fused buckets reduced behind the backward pass, optional FP16
//     wire), streaming progress to observers and cancelling collectively
//     through a context.
//   - Serving: Result.Model wraps the trained network for single-shot
//     tiled Segment calls, and NewServer turns it into a concurrent
//     service — bounded admission queue, cross-request tile
//     micro-batching, replica workers, per-request cancellation — with
//     bit-identical masks at every batch size and scheduling.
//   - Fault tolerance: WithCheckpointEvery/WithCheckpointDir write
//     versioned, CRC-guarded full-training-state snapshots (weights,
//     optimizer moments, FP16 loss scaler, per-rank data cursors, step
//     counter) from an asynchronous double-buffered writer with atomic
//     commit and retention; WithResume continues an interrupted run
//     bit-exactly — resume(k steps) equals never having stopped.
//     LatestCheckpoint/VerifyCheckpoint and typed load errors are the
//     operator surface; README.md carries the operations runbook.
//   - Analysis: BuildModel with a symbolic ModelConfig analyzes the
//     paper-exact networks at full 1152×768×16 scale (kernel tables,
//     scaling models) without allocating gigabytes.
//
// The root package holds the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation, plus the
// serving and checkpoint-overhead SLO smokes. The library internals live
// under internal/ (27 packages, inventoried in DESIGN.md), the
// executables under cmd/, and runnable walkthroughs under examples/.
package repro
