package exaclim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/tensor"
)

// FleetStat is the per-request record of sharded serving: tile counts
// (including early-exited and re-dispatched tiles), latency, and the
// weight version — generation number and training step — every tile of
// the request was decoded with.
type FleetStat = fleet.RequestStat

// FleetStats is a snapshot of fleet-level counters: throughput, failures,
// re-dispatches, dead shards, completed swaps, the current weight version,
// latency quantiles (overall and inside swap windows), and the
// virtual-clock scaling figures (VirtualSeconds, VirtualReqPerSec).
type FleetStats = fleet.Stats

// FleetOption configures NewFleet.
type FleetOption func(*fleetOptions)

type fleetOptions struct {
	err        error
	shards     int
	replicas   int
	maxBatch   int
	admit      int
	queue      int
	segment    SegmentConfig
	earlyExit  bool
	exitThr    float64
	exitHead   *infer.ExitHead
	observer   func(FleetStat)
	hotswapDir string
	hotswapInt time.Duration
}

// WithShards sets the number of shard nodes the tile queue is scattered
// across. Each shard is a simulated node on the serving fabric with its
// own replica engines and virtual clock. Default 1.
func WithShards(n int) FleetOption {
	return func(o *fleetOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithShards wants n ≥ 1, got %d", n)
			return
		}
		o.shards = n
	}
}

// WithShardReplicas sets the number of replica engines per shard, each
// with isolated execution state. Default 1.
func WithShardReplicas(n int) FleetOption {
	return func(o *fleetOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithShardReplicas wants n ≥ 1, got %d", n)
			return
		}
		o.replicas = n
	}
}

// WithAdmission bounds each shard's outstanding tiles — the per-shard
// admission control. The router never holds more than n tiles at a shard;
// excess load spills to the least-loaded healthy shard (straggler
// avoidance) or waits at the front end. Default 4× the batch size.
func WithAdmission(n int) FleetOption {
	return func(o *fleetOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithAdmission wants n ≥ 1, got %d", n)
			return
		}
		o.admit = n
	}
}

// WithHotSwap starts a checkpoint watcher over dir: every committed
// training snapshot newer than the last one served is rolled into the
// fleet with the no-drain hot-swap protocol (see Fleet.SwapCheckpoint).
// poll is the directory polling interval; 0 or negative means 50ms.
func WithHotSwap(dir string, poll time.Duration) FleetOption {
	return func(o *fleetOptions) {
		if dir == "" {
			o.err = fmt.Errorf("exaclim: WithHotSwap wants a checkpoint directory")
			return
		}
		o.hotswapDir = dir
		o.hotswapInt = poll
	}
}

// WithFleetMaxBatch sets how many tiles are stacked into one replica
// executor run. Masks are bit-identical for every batch size. Default 8.
func WithFleetMaxBatch(n int) FleetOption {
	return func(o *fleetOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithFleetMaxBatch wants n ≥ 1, got %d", n)
			return
		}
		o.maxBatch = n
	}
}

// WithFleetQueueDepth bounds the front end's pending request queue;
// Segment blocks (backpressure) while it is full. Default 32.
func WithFleetQueueDepth(n int) FleetOption {
	return func(o *fleetOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithFleetQueueDepth wants n ≥ 1, got %d", n)
			return
		}
		o.queue = n
	}
}

// WithFleetSegmentConfig sets the tiling geometry and precision requests
// are served with (SegmentConfig.MaxBatch is ignored — WithFleetMaxBatch
// governs the fleet's batching).
func WithFleetSegmentConfig(cfg SegmentConfig) FleetOption {
	return func(o *fleetOptions) { o.segment = cfg }
}

// WithFleetEarlyExit enables the adaptive background-tile path on every
// shard with a manual threshold over the raw encoder-prefix energy score,
// exactly as WithEarlyExit does for the single-process server.
func WithFleetEarlyExit(threshold float64) FleetOption {
	return func(o *fleetOptions) {
		if threshold < 0 {
			o.err = fmt.Errorf("exaclim: WithFleetEarlyExit wants threshold ≥ 0, got %v", threshold)
			return
		}
		o.earlyExit = true
		o.exitThr = threshold
		o.exitHead = nil
	}
}

// WithFleetCalibratedExit enables the adaptive background-tile path with
// the head/threshold pair of an offline Model.CalibrateExit run — the
// normal way to turn early exit on for a fleet.
func WithFleetCalibratedExit(cal ExitCalibration) FleetOption {
	return func(o *fleetOptions) {
		if len(cal.Head.Weights) == 0 {
			o.err = fmt.Errorf("exaclim: WithFleetCalibratedExit wants a CalibrateExit result (empty head)")
			return
		}
		head := cal.Head
		o.earlyExit = true
		o.exitThr = cal.Threshold
		o.exitHead = &head
	}
}

// WithFleetObserver streams every finished request's FleetStat (including
// failed ones) to obs. obs runs on fleet goroutines: it must be safe for
// concurrent use and return quickly.
func WithFleetObserver(obs func(FleetStat)) FleetOption {
	return func(o *fleetOptions) { o.observer = obs }
}

// Fleet is a sharded serving front end over one trained model: the tile
// queue of concurrent Segment requests is scattered across simulated shard
// nodes (with per-shard admission control, hash-affine routing, and
// re-dispatch around dead shards) and new training checkpoints roll in as
// live weight hot-swaps that never drop or mix a request. Create with
// NewFleet, issue requests with Segment from any number of goroutines, and
// Close to drain.
//
// Because shards are ranks of a simulated fabric with virtual clocks, a
// Fleet also answers the scaling question: FleetStats.VirtualReqPerSec is
// the fleet's throughput under the serving fabric's network model,
// comparable across shard counts on any host.
type Fleet struct {
	inner   *fleet.Fleet
	model   *Model
	swapper *fleet.Swapper
}

// NewFleet builds a sharded serving fleet over the model. The model's
// weights are shared by reference with generation 0 of the fleet: do not
// train the model while the fleet is running — ship new weights through
// SwapCheckpoint or WithHotSwap instead.
func NewFleet(m *Model, opts ...FleetOption) (*Fleet, error) {
	o := &fleetOptions{
		shards:   1,
		replicas: 1,
		maxBatch: 8,
		queue:    32,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}
	tile, err := m.inferConfig(o.segment)
	if err != nil {
		return nil, err
	}
	var factory func() (*infer.Network, error)
	if m.rebuild != nil {
		rebuild := m.rebuild
		factory = func() (*infer.Network, error) {
			net, err := rebuild()
			if err != nil {
				return nil, err
			}
			return infer.FromModel(net), nil
		}
	}
	inner, err := fleet.New(m.adapter(), fleet.Config{
		Shards:        o.shards,
		ShardReplicas: o.replicas,
		MaxBatch:      o.maxBatch,
		AdmitPerShard: o.admit,
		QueueDepth:    o.queue,
		Tile:          tile,
		EarlyExit:     o.earlyExit,
		ExitThreshold: o.exitThr,
		ExitHead:      o.exitHead,
		NewNetwork:    factory,
		OnStat:        o.observer,
	})
	if err != nil {
		return nil, err
	}
	f := &Fleet{inner: inner, model: m}
	if o.hotswapDir != "" {
		f.swapper = inner.WatchSnapshots(o.hotswapDir, o.hotswapInt, nil)
	}
	return f, nil
}

// Segment schedules a [channels, H, W] field tensor for sharded tiled
// segmentation and blocks until the stitched [H, W] mask is complete, the
// context is cancelled, or the fleet closes. Every tile of the request is
// decoded with the weight version current at admission (FleetStat.Version
// / .Step), even when hot-swaps are rolling. Safe for concurrent use.
func (f *Fleet) Segment(ctx context.Context, fields *tensor.Tensor) (*tensor.Tensor, FleetStat, error) {
	return f.inner.Segment(ctx, fields)
}

// SwapCheckpoint rolls the training snapshot at path (or, given a
// directory, its latest committed snapshot) into the fleet as the new
// serving weights: shards warm the new generation one at a time while the
// rest keep serving, admissions flip atomically, in-flight requests finish
// on the weights they started with, and the old generation's engines are
// released when its last request completes. No accepted request is dropped
// or served by a mix of versions.
func (f *Fleet) SwapCheckpoint(path string) error {
	state, err := models.LoadSnapshotFile(path)
	if err != nil {
		return err
	}
	return f.inner.SwapWeights(state)
}

// Stats snapshots the fleet's counters, latency quantiles, and
// virtual-clock throughput.
func (f *Fleet) Stats() FleetStats { return f.inner.Stats() }

// Close drains the fleet: the hot-swap watcher (if any) stops, running
// requests finish, new ones are refused, and every shard's engines are
// released. Safe to call from multiple goroutines; all block until the
// drain completes.
func (f *Fleet) Close() error {
	if f.swapper != nil {
		f.swapper.Stop()
	}
	return f.inner.Close()
}
