package exaclim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/loss"
	"repro/internal/models"
)

// Size selects a configuration scale for a registered network.
type Size int

const (
	// Tiny is a reduced-width configuration with the paper topology,
	// trainable on a CPU in seconds.
	Tiny Size = iota
	// Paper is the exact configuration the paper scaled to Summit
	// (1152×768×16 inputs); build it Symbolic for analysis.
	Paper
	// Original is the pre-modification variant where one exists (the
	// growth-16/3×3 Tiramisu of the §V-B5 ablation).
	Original
)

// String names the size.
func (s Size) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Paper:
		return "paper"
	case Original:
		return "original"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// registry is a name → value table shared by the network, optimizer, and
// weighting lookups, so CLI flags map 1:1 to keys and unknown names fail
// with the valid alternatives spelled out.
type registry[T any] struct {
	kind    string
	entries map[string]T
}

func (r *registry[T]) lookup(name string) (T, error) {
	if v, ok := r.entries[name]; ok {
		return v, nil
	}
	var zero T
	return zero, fmt.Errorf("exaclim: unknown %s %q (valid: %s)",
		r.kind, name, strings.Join(r.names(), ", "))
}

func (r *registry[T]) names() []string {
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// networkBuilder constructs a model replica at one of the registered sizes.
type networkBuilder func(size Size, c models.Config) (*models.Network, error)

var networks = &registry[networkBuilder]{kind: "network", entries: map[string]networkBuilder{
	"tiramisu": func(size Size, c models.Config) (*models.Network, error) {
		switch size {
		case Paper:
			return models.BuildTiramisu(models.PaperTiramisu(c))
		case Original:
			return models.BuildTiramisu(models.OriginalTiramisu(c))
		default:
			return models.BuildTiramisu(models.TinyTiramisu(c))
		}
	},
	"deeplab": func(size Size, c models.Config) (*models.Network, error) {
		switch size {
		case Paper:
			return models.BuildDeepLab(models.PaperDeepLab(c))
		case Original:
			return nil, fmt.Errorf("exaclim: network %q has no %q size", "deeplab", "original")
		default:
			return models.BuildDeepLab(models.TinyDeepLab(c))
		}
	},
}}

var optimizers = &registry[core.OptimizerKind]{kind: "optimizer", entries: map[string]core.OptimizerKind{
	"adam": core.Adam, // the paper's Tiramisu optimizer
	"sgd":  core.SGD,  // SGD with momentum 0.9
}}

var weightings = &registry[loss.Weighting]{kind: "weighting", entries: map[string]loss.Weighting{
	"none": loss.Unweighted,
	"inv":  loss.InverseFrequency,
	"sqrt": loss.InverseSqrtFrequency, // the paper's 1/√f choice
}}

// ClassWeights converts class pixel frequencies into per-class loss
// weights under a registered weighting scheme — the values WeightMap
// applies per pixel during training.
func ClassWeights(freq []float64, weighting string) ([]float32, error) {
	w, err := weightings.lookup(weighting)
	if err != nil {
		return nil, err
	}
	return loss.ClassWeights(freq, w), nil
}

// Networks lists the registered network names.
func Networks() []string { return networks.names() }

// Optimizers lists the registered optimizer names.
func Optimizers() []string { return optimizers.names() }

// Weightings lists the registered loss-weighting names.
func Weightings() []string { return weightings.names() }
