package exaclim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/infer"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// ServeStat is the per-request serving record: how many tiles the request
// decomposed into, the mean executor batch its tiles rode in, how many
// tiles the early-exit path resolved, and its latency decomposed into
// queue wait and compute time.
type ServeStat = serve.RequestStat

// ServerStats is a snapshot of server-level counters: request/tile
// throughput, latency quantiles (p50/p95/p99), batch occupancy, queue
// depth, and the early-exit path's counters (checks, exits, exit rate,
// per-path compute quantiles).
type ServerStats = serve.Stats

// ExitCalibration is the result of an offline CalibrateExit pass: the
// threshold, the storm/background tile census it was derived from, and the
// exit rate it predicts.
type ExitCalibration = infer.Calibration

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

type serverOptions struct {
	err       error
	replicas  int
	maxBatch  int
	queue     int
	deadline  time.Duration
	segment   SegmentConfig
	earlyExit bool
	exitThr   float64
	exitHead  *infer.ExitHead
	observer  func(ServeStat)
}

// WithReplicas sets the number of replica workers, each with an isolated
// inference engine (executors, plans, and a private tensor pool), so
// replicas never contend on execution state. Default 1.
func WithReplicas(n int) ServerOption {
	return func(o *serverOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithReplicas wants n ≥ 1, got %d", n)
			return
		}
		o.replicas = n
	}
}

// WithMaxBatch sets how many tiles — across requests — are stacked into
// one executor run. Stitched masks are bit-identical for every batch size;
// larger batches amortize per-run cost. Default 8.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithMaxBatch wants n ≥ 1, got %d", n)
			return
		}
		o.maxBatch = n
	}
}

// WithQueueDepth bounds the admission queue in tiles; admission blocks
// (backpressure) while it is full. Default 256.
func WithQueueDepth(n int) ServerOption {
	return func(o *serverOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithQueueDepth wants n ≥ 1, got %d", n)
			return
		}
		o.queue = n
	}
}

// WithBatchDeadline sets how long a worker holding a partial batch waits
// for more tiles before running it — latency traded for batch occupancy
// under bursty load. Default 200µs; 0 runs whatever is queued immediately.
func WithBatchDeadline(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d < 0 {
			o.err = fmt.Errorf("exaclim: WithBatchDeadline wants d ≥ 0, got %v", d)
			return
		}
		o.deadline = d
	}
}

// WithServeSegmentConfig sets the tiling geometry and precision requests
// are served with (SegmentConfig.MaxBatch is ignored here — WithMaxBatch
// governs the server's batching).
func WithServeSegmentConfig(cfg SegmentConfig) ServerOption {
	return func(o *serverOptions) { o.segment = cfg }
}

// WithServePrecision selects the inference kernel set requests are served
// with: FP32 (the bit-parity reference), FP16, or INT8 (symmetric
// per-channel quantized conv/GEMM kernels). It overrides the Precision of
// any WithServeSegmentConfig. (The name differs from the training option
// WithPrecision because serving and training precisions are independent
// knobs: a model trained in FP16 may serve in INT8 and vice versa.)
func WithServePrecision(p Precision) ServerOption {
	return func(o *serverOptions) { o.segment.Precision = p }
}

// WithEarlyExit enables the adaptive background-tile path with a manual
// exit threshold over the raw encoder-prefix energy score (mean absolute
// tap activation): tiles scoring below it skip the deep decoder and emit an
// all-background mask region. Requires a model whose network carries an
// exit tap (both registered networks do). Prefer WithCalibratedExit, which
// serves the fitted confidence head and the threshold calibrated against
// it as a pair.
func WithEarlyExit(threshold float64) ServerOption {
	return func(o *serverOptions) {
		if threshold < 0 {
			o.err = fmt.Errorf("exaclim: WithEarlyExit wants threshold ≥ 0, got %v", threshold)
			return
		}
		o.earlyExit = true
		o.exitThr = threshold
		o.exitHead = nil
	}
}

// WithCalibratedExit enables the adaptive background-tile path with the
// confidence head and threshold of an offline CalibrateExit run — the
// normal way to turn early exit on. On the calibration fields the served
// masks are bit-identical to full decodes by construction; on unseen
// traffic the guarantee is statistical (see Model.CalibrateExit).
func WithCalibratedExit(cal ExitCalibration) ServerOption {
	return func(o *serverOptions) {
		if len(cal.Head.Weights) == 0 {
			o.err = fmt.Errorf("exaclim: WithCalibratedExit wants a CalibrateExit result (empty head)")
			return
		}
		head := cal.Head
		o.earlyExit = true
		o.exitThr = cal.Threshold
		o.exitHead = &head
	}
}

// WithServeObserver streams every finished request's ServeStat (including
// failed and cancelled requests) to obs, from worker goroutines: obs must
// be safe for concurrent use and return quickly.
func WithServeObserver(obs func(ServeStat)) ServerOption {
	return func(o *serverOptions) { o.observer = obs }
}

// Server is a batched tiled-inference service over one trained model: a
// bounded admission queue, cross-request micro-batching, and replica
// workers with isolated execution state. Create with NewServer, issue
// requests with Segment from any number of goroutines, and Close to drain.
type Server struct {
	inner *serve.Server
	model *Model
}

// NewServer builds a serving stack over the model. The model's weights are
// shared by reference with the server's inference clones: do not train the
// model (or load a checkpoint into it) while the server is running;
// sequential train → serve is fine.
func NewServer(m *Model, opts ...ServerOption) (*Server, error) {
	o := &serverOptions{
		replicas: 1,
		maxBatch: 8,
		queue:    256,
		deadline: 200 * time.Microsecond,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}
	tile, err := m.inferConfig(o.segment)
	if err != nil {
		return nil, err
	}
	inner, err := serve.New(m.adapter(), serve.Config{
		Replicas:      o.replicas,
		MaxBatch:      o.maxBatch,
		QueueDepth:    o.queue,
		BatchDeadline: o.deadline,
		Tile:          tile,
		EarlyExit:     o.earlyExit,
		ExitThreshold: o.exitThr,
		ExitHead:      o.exitHead,
		OnStat:        o.observer,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner, model: m}, nil
}

// Segment schedules a [channels, H, W] field tensor for tiled segmentation
// and blocks until the stitched [H, W] class mask is complete, the context
// is cancelled, or the server closes. Its ServeStat is returned alongside
// (and streamed to WithServeObserver). Safe for concurrent use; concurrent
// requests' tiles coalesce into shared executor batches.
func (s *Server) Segment(ctx context.Context, fields *tensor.Tensor) (*tensor.Tensor, ServeStat, error) {
	return s.inner.Segment(ctx, fields)
}

// Stats snapshots the server's throughput, latency quantiles, batch
// occupancy, and queue depth.
func (s *Server) Stats() ServerStats { return s.inner.Stats() }

// Close drains the server: running requests finish, new ones are refused.
// Safe to call more than once.
func (s *Server) Close() error { return s.inner.Close() }

// CalibrateExit fits the early-exit confidence head and its threshold
// offline: every tile of the calibration fields is fully decoded and its
// exit-tap features pooled with the exact engine configuration of cfg
// (geometry, precision, batching); the head is a closed-form ridge fit of
// storm-in-keep-region against those features; and the threshold is the
// largest value that exits no tile whose decoded keep region contains a
// storm pixel — so on the calibration set, serving with
// WithCalibratedExit(result) produces masks bit-identical to full decodes.
// margin in (0, 1] pulls the threshold down toward the background score
// floor for headroom on unseen traffic (0 means 1, no headroom).
func (m *Model) CalibrateExit(fields []*tensor.Tensor, cfg SegmentConfig, margin float64) (ExitCalibration, error) {
	icfg, err := m.inferConfig(cfg)
	if err != nil {
		return ExitCalibration{}, err
	}
	r, err := infer.NewRunner(m.adapter(), icfg)
	if err != nil {
		return ExitCalibration{}, err
	}
	defer r.Close()
	return r.Calibrate(fields, margin)
}
