package exaclim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/serve"
	"repro/internal/tensor"
)

// ServeStat is the per-request serving record: how many tiles the request
// decomposed into, the mean executor batch its tiles rode in, how long it
// waited in the admission queue, and its end-to-end latency.
type ServeStat = serve.RequestStat

// ServerStats is a snapshot of server-level counters: request/tile
// throughput, latency quantiles (p50/p95/p99), batch occupancy, and
// queue depth.
type ServerStats = serve.Stats

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

type serverOptions struct {
	err      error
	replicas int
	maxBatch int
	queue    int
	deadline time.Duration
	segment  SegmentConfig
	observer func(ServeStat)
}

// WithReplicas sets the number of replica workers, each with an isolated
// inference engine (executors, plans, and a private tensor pool), so
// replicas never contend on execution state. Default 1.
func WithReplicas(n int) ServerOption {
	return func(o *serverOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithReplicas wants n ≥ 1, got %d", n)
			return
		}
		o.replicas = n
	}
}

// WithMaxBatch sets how many tiles — across requests — are stacked into
// one executor run. Stitched masks are bit-identical for every batch size;
// larger batches amortize per-run cost. Default 8.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithMaxBatch wants n ≥ 1, got %d", n)
			return
		}
		o.maxBatch = n
	}
}

// WithQueueDepth bounds the admission queue in tiles; admission blocks
// (backpressure) while it is full. Default 256.
func WithQueueDepth(n int) ServerOption {
	return func(o *serverOptions) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithQueueDepth wants n ≥ 1, got %d", n)
			return
		}
		o.queue = n
	}
}

// WithBatchDeadline sets how long a worker holding a partial batch waits
// for more tiles before running it — latency traded for batch occupancy
// under bursty load. Default 200µs; 0 runs whatever is queued immediately.
func WithBatchDeadline(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d < 0 {
			o.err = fmt.Errorf("exaclim: WithBatchDeadline wants d ≥ 0, got %v", d)
			return
		}
		o.deadline = d
	}
}

// WithServeSegmentConfig sets the tiling geometry and precision requests
// are served with (SegmentConfig.MaxBatch is ignored here — WithMaxBatch
// governs the server's batching).
func WithServeSegmentConfig(cfg SegmentConfig) ServerOption {
	return func(o *serverOptions) { o.segment = cfg }
}

// WithServeObserver streams every finished request's ServeStat (including
// failed and cancelled requests) to obs, from worker goroutines: obs must
// be safe for concurrent use and return quickly.
func WithServeObserver(obs func(ServeStat)) ServerOption {
	return func(o *serverOptions) { o.observer = obs }
}

// Server is a batched tiled-inference service over one trained model: a
// bounded admission queue, cross-request micro-batching, and replica
// workers with isolated execution state. Create with NewServer, issue
// requests with Segment from any number of goroutines, and Close to drain.
type Server struct {
	inner *serve.Server
	model *Model
}

// NewServer builds a serving stack over the model. The model's weights are
// shared by reference with the server's inference clones: do not train the
// model (or load a checkpoint into it) while the server is running;
// sequential train → serve is fine.
func NewServer(m *Model, opts ...ServerOption) (*Server, error) {
	o := &serverOptions{
		replicas: 1,
		maxBatch: 8,
		queue:    256,
		deadline: 200 * time.Microsecond,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}
	tile, err := m.inferConfig(o.segment)
	if err != nil {
		return nil, err
	}
	inner, err := serve.New(m.adapter(), serve.Config{
		Replicas:      o.replicas,
		MaxBatch:      o.maxBatch,
		QueueDepth:    o.queue,
		BatchDeadline: o.deadline,
		Tile:          tile,
		OnStat:        o.observer,
	})
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner, model: m}, nil
}

// Segment schedules a [channels, H, W] field tensor for tiled segmentation
// and blocks until the stitched [H, W] class mask is complete, the context
// is cancelled, or the server closes. Its ServeStat is returned alongside
// (and streamed to WithServeObserver). Safe for concurrent use; concurrent
// requests' tiles coalesce into shared executor batches.
func (s *Server) Segment(ctx context.Context, fields *tensor.Tensor) (*tensor.Tensor, ServeStat, error) {
	return s.inner.Segment(ctx, fields)
}

// Stats snapshots the server's throughput, latency quantiles, batch
// occupancy, and queue depth.
func (s *Server) Stats() ServerStats { return s.inner.Stats() }

// Close drains the server: running requests finish, new ones are refused.
// Safe to call more than once.
func (s *Server) Close() error { return s.inner.Close() }
