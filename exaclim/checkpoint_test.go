package exaclim

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func ckptBase(dir string) []Option {
	return []Option{
		WithNetwork("tiramisu", Tiny),
		WithSyntheticData(16, 16, 16, 9),
		WithRanks(2, 1),
		WithSeed(4),
		WithCheckpointDir(dir),
		WithCheckpointEvery(3),
	}
}

func TestCheckpointOptionValidation(t *testing.T) {
	cases := [][]Option{
		{WithCheckpointEvery(3)},                        // every without dir
		{WithCheckpointDir(t.TempDir())},                // dir without every
		{WithCheckpointEvery(0)},                        // bad cadence
		{WithCheckpointRetain(0)},                       // bad retention
		{WithResume("")},                                // empty resume path
		{WithResume("x"), WithInitCheckpoint("y")},      // full state vs weights only
		{WithCheckpointDir(""), WithCheckpointEvery(1)}, // empty dir
	}
	for i, opts := range cases {
		if _, err := New(opts...); err == nil {
			t.Errorf("case %d: invalid checkpoint options accepted", i)
		}
	}
}

// TestFullStateResumeThroughAPI is the public-API twin of the core
// bit-exact property: interrupt at step 3 of 6, resume, and the final
// snapshot must match the uninterrupted run's byte for byte.
func TestFullStateResumeThroughAPI(t *testing.T) {
	run := func(dir string, steps int, extra ...Option) *Result {
		t.Helper()
		exp, err := New(append(append(ckptBase(dir), WithSteps(steps)), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	refDir := t.TempDir()
	ref := run(refDir, 6)
	if ref.Checkpoints != 2 || ref.StartStep != 0 {
		t.Fatalf("reference: %d checkpoints, start %d", ref.Checkpoints, ref.StartStep)
	}

	resDir := t.TempDir()
	run(resDir, 3)
	res := run(resDir, 6, WithResume(resDir))
	if res.StartStep != 3 || len(res.History) != 3 {
		t.Fatalf("resumed: start %d, %d steps", res.StartStep, len(res.History))
	}
	for i, s := range res.History {
		if s.Loss != ref.History[3+i].Loss {
			t.Fatalf("step %d loss %g differs from uninterrupted %g", s.Step, s.Loss, ref.History[3+i].Loss)
		}
	}

	a, err := os.ReadFile(filepath.Join(refDir, "ckpt-000000000006.snap"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(res.LastCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("final snapshots differ: public-API resume is not bit-exact")
	}

	if _, step, err := LatestCheckpoint(resDir); err != nil || step != 6 {
		t.Fatalf("LatestCheckpoint: step %d err %v", step, err)
	}
	info, err := VerifyCheckpoint(res.LastCheckpoint)
	if err != nil || info.Step != 6 {
		t.Fatalf("VerifyCheckpoint: %+v err %v", info, err)
	}
	if info.Ranks != 2 || info.GlobalBatch != 2 || info.Compacted {
		t.Fatalf("VerifyCheckpoint metadata: %+v", info)
	}
	if fi, err := os.Stat(res.LastCheckpoint); err != nil || info.SizeBytes != fi.Size() {
		t.Fatalf("VerifyCheckpoint size %d, file %v err %v", info.SizeBytes, fi, err)
	}
}

// TestCorruptCheckpointFailsTyped: a damaged snapshot must surface a typed
// error from Run — and never panic or half-apply.
func TestCorruptCheckpointFailsTyped(t *testing.T) {
	dir := t.TempDir()
	exp, err := New(append(ckptBase(dir), WithSteps(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	path, _, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		mut  func() []byte
		want error
	}{
		{"corrupt", func() []byte {
			bad := append([]byte(nil), raw...)
			bad[len(bad)/2] ^= 1
			return bad
		}, ErrCheckpointCorrupt},
		{"truncated", func() []byte { return raw[:len(raw)/3] }, ErrCheckpointTruncated},
		{"foreign", func() []byte { return []byte("0123456789abcdef0123456789") }, ErrCheckpointFormat},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mut(), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := VerifyCheckpoint(path); !errors.Is(err, tc.want) {
				t.Fatalf("VerifyCheckpoint: got %v, want %v", err, tc.want)
			}
			exp, err := New(append(ckptBase(dir), WithSteps(6), WithResume(path))...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := exp.Run(context.Background()); !errors.Is(err, tc.want) {
				t.Fatalf("Run: got %v, want %v", err, tc.want)
			}
		})
	}

	if _, _, err := LatestCheckpoint(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
}

// TestResumeRejectsRankMismatch: the snapshot pins the world size.
func TestResumeRejectsRankMismatch(t *testing.T) {
	dir := t.TempDir()
	exp, err := New(append(ckptBase(dir), WithSteps(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	opts := append(ckptBase(dir), WithSteps(6), WithResume(dir))
	opts = append(opts, WithRanks(4, 1)) // snapshot was taken at 2
	exp, err = New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err == nil {
		t.Fatal("resume at a different rank count must fail")
	}
}
