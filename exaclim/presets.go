package exaclim

import "repro/internal/perfmodel"

// Quickstart returns the options of the smallest end-to-end experiment:
// the paper's Tiramisu configuration at CPU scale — reduced-width network,
// synthetic 24×32 climate data, Adam, the 1/√f pixel weighting, one rank —
// with IoU validation. Append further options to override any of it:
//
//	exp, err := exaclim.New(append(exaclim.Quickstart(), exaclim.WithSteps(50))...)
func Quickstart() []Option {
	return []Option{
		WithNetwork("tiramisu", Tiny),
		WithSyntheticData(24, 32, 32, 42),
		WithPrecision(FP32),
		WithOptimizer("adam"),
		WithLR(3e-3),
		WithWeighting("sqrt"),
		WithRanks(1, 1),
		WithSteps(30),
		WithSeed(1),
		WithValidation(3),
		WithStepComputeSeconds(0.5),
	}
}

// SummitScale returns the options of the paper's headline configuration —
// DeepLabv3+ in FP16 with hybrid all-reduce, gradient lag 1, LARC, the
// radix-4 hierarchical control plane, and the cube-law learning rate —
// scaled down to `ranks` simulated Summit GPUs (a multiple of 6, Summit's
// GPUs per node). The network and dataset stay at CPU-trainable size; the
// distributed machinery is the paper's.
func SummitScale(ranks int) []Option {
	// The paper's LR(n) = 1e-4·(n/384)³ cube law, rescaled so the anchor
	// concurrency of these reduced runs (6 ranks) gets a trainable 2e-3.
	lr := 2e-3 * perfmodel.PaperLR(384*ranks/6) / perfmodel.PaperLR(384)
	return []Option{
		WithNetwork("deeplab", Tiny),
		WithSyntheticData(16, 16, 32, 42),
		WithPrecision(FP16),
		WithLossScale(1024),
		WithOptimizer("sgd"),
		WithLR(lr),
		WithLARC(0.01),
		WithGradientLag(1),
		WithWeighting("sqrt"),
		WithRanks(ranks, 6),
		WithSummitFabric(),
		WithHybridAllReduce(),
		WithControlTree(4),
		WithSteps(40),
		WithSeed(1),
		WithValidation(3),
		WithStepComputeSeconds(0.9),
	}
}
