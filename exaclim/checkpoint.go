package exaclim

import (
	"repro/internal/models"
)

// Checkpoint plumbing exposed at the public API: typed load failures for
// errors.Is and the directory helpers operators script recovery with. The
// snapshot files themselves are written by WithCheckpointEvery and consumed
// by WithResume; see those options for the format guarantees.

// Typed checkpoint-load failures. A snapshot that cannot be trusted is
// never partially applied: Run (under WithResume) and LatestCheckpoint
// return one of these, matched with errors.Is.
var (
	// ErrCheckpointFormat: the file is not a training snapshot.
	ErrCheckpointFormat = models.ErrSnapshotFormat
	// ErrCheckpointVersion: written by an incompatible snapshot version.
	ErrCheckpointVersion = models.ErrSnapshotVersion
	// ErrCheckpointTruncated: the file is shorter than its header promises
	// (partial write or torn copy).
	ErrCheckpointTruncated = models.ErrSnapshotTruncated
	// ErrCheckpointCorrupt: full length but the checksum does not match.
	ErrCheckpointCorrupt = models.ErrSnapshotCorrupt
	// ErrNoCheckpoint: the directory holds no committed snapshot.
	ErrNoCheckpoint = models.ErrNoSnapshot
)

// LatestCheckpoint returns the newest committed snapshot in a checkpoint
// directory and the training step it was taken at. Orphaned *.tmp files
// from an interrupted writer are ignored. Returns ErrNoCheckpoint when the
// directory holds none.
func LatestCheckpoint(dir string) (path string, step uint64, err error) {
	return models.LatestSnapshot(dir)
}

// VerifyCheckpoint fully reads and checksums a snapshot file (or, given a
// directory, its latest committed snapshot) without applying it, returning
// the step it was taken at. This is the operator's pre-flight check before
// relying on a snapshot for recovery; failures are the typed errors above.
func VerifyCheckpoint(path string) (step uint64, err error) {
	st, err := models.LoadSnapshotFile(path)
	if err != nil {
		return 0, err
	}
	return st.Step, nil
}
