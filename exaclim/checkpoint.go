package exaclim

import (
	"os"

	"repro/internal/models"
)

// Checkpoint plumbing exposed at the public API: typed load failures for
// errors.Is and the directory helpers operators script recovery with. The
// snapshot files themselves are written by WithCheckpointEvery and consumed
// by WithResume/WithElasticResume; see those options for the format
// guarantees.

// Typed checkpoint-load failures. A snapshot that cannot be trusted is
// never partially applied: Run (under WithResume) and LatestCheckpoint
// return one of these, matched with errors.Is.
var (
	// ErrCheckpointFormat: the file is not a training snapshot.
	ErrCheckpointFormat = models.ErrSnapshotFormat
	// ErrCheckpointVersion: written by an incompatible snapshot version.
	ErrCheckpointVersion = models.ErrSnapshotVersion
	// ErrCheckpointTruncated: the file is shorter than its header promises
	// (partial write or torn copy).
	ErrCheckpointTruncated = models.ErrSnapshotTruncated
	// ErrCheckpointCorrupt: full length but the checksum does not match.
	ErrCheckpointCorrupt = models.ErrSnapshotCorrupt
	// ErrNoCheckpoint: the directory holds no committed snapshot.
	ErrNoCheckpoint = models.ErrNoSnapshot
	// ErrCheckpointRankMismatch: the snapshot disagrees with the run's
	// world shape — resuming at a different rank count without
	// WithElasticResume, or a global batch the snapshot does not carry.
	ErrCheckpointRankMismatch = models.ErrSnapshotRankMismatch
)

// LatestCheckpoint returns the newest committed snapshot in a checkpoint
// directory and the training step it was taken at. Orphaned *.tmp files
// from an interrupted writer are ignored. Returns ErrNoCheckpoint when the
// directory holds none.
func LatestCheckpoint(dir string) (path string, step uint64, err error) {
	return models.LatestSnapshot(dir)
}

// CheckpointInfo is a verified snapshot's metadata — what an operator needs
// to decide how (and whether) a recovery can use it.
type CheckpointInfo struct {
	// Path is the snapshot file the metadata describes (resolved to the
	// latest committed file when a directory was given).
	Path string
	// Step is the training step the snapshot was taken at.
	Step uint64
	// Ranks is the world size that wrote the snapshot. With
	// WithElasticResume a run may resume it at any world size.
	Ranks int
	// GlobalBatch is the number of data columns (samples per step) the
	// trajectory is defined over. Legacy snapshots report their rank count
	// (one column per rank).
	GlobalBatch int
	// Seed is the experiment seed the run must match to resume.
	Seed int64
	// SizeBytes is the file size on disk.
	SizeBytes int64
	// Compacted reports the delta encoding (WithSnapshotCompaction):
	// weights compressed losslessly, Adam moments quantized.
	Compacted bool
}

// InspectCheckpoint fully reads and checksums a snapshot file (or, given a
// directory, its latest committed snapshot) without applying it, and
// returns its metadata. This is the operator's pre-flight check before
// relying on a snapshot for recovery — in particular Ranks/GlobalBatch/Seed
// say whether a changed allocation can resume it (see WithElasticResume).
// Failures are the typed errors above.
func InspectCheckpoint(path string) (*CheckpointInfo, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		latest, _, err := models.LatestSnapshot(path)
		if err != nil {
			return nil, err
		}
		path = latest
	}
	st, err := models.LoadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	info := &CheckpointInfo{
		Path:        path,
		Step:        st.Step,
		Ranks:       st.Ranks,
		GlobalBatch: st.GlobalBatch,
		Seed:        st.Seed,
		Compacted:   st.Compact,
	}
	if info.GlobalBatch == 0 {
		info.GlobalBatch = st.Ranks
	}
	if fi, err := os.Stat(path); err == nil {
		info.SizeBytes = fi.Size()
	}
	return info, nil
}

// VerifyCheckpoint is InspectCheckpoint under its historical name: it fully
// reads and checksums a snapshot (or a directory's latest committed one)
// without applying it, reporting the metadata on success.
func VerifyCheckpoint(path string) (*CheckpointInfo, error) {
	return InspectCheckpoint(path)
}
