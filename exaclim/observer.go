package exaclim

import (
	"fmt"
	"io"
)

// StepStat is one training step's record from rank 0's perspective.
type StepStat struct {
	Step        int
	Loss        float64 // mean loss across ranks
	VirtualTime float64 // rank-0 virtual clock at step end
	Skipped     bool    // FP16 overflow skip
	Last        bool    // final step of the configured run

	// OverlapFrac is the fraction of this step's gradient-exchange buckets
	// that were already reduced when the backward pass finished —
	// communication hidden behind compute. Zero when WithCommOverlap is
	// disabled.
	OverlapFrac float64

	// PoolAllocs and PoolReuses are rank 0's cumulative workspace counters
	// (buffer requests that allocated fresh memory vs. were served from the
	// pool). Under the default pooled policy, a healthy run shows
	// PoolReuses growing every step while PoolAllocs plateaus after warmup.
	PoolAllocs uint64
	PoolReuses uint64
}

// ValStat is one mid-training validation record (the paper's per-epoch
// validation pass, Section VI).
type ValStat struct {
	Step     int
	MeanIoU  float64
	Accuracy float64
}

// Observer streams training progress as it happens, instead of post-hoc
// slicing Result.History. Callbacks run synchronously on rank 0's training
// goroutine in step order; they should return quickly and must not call
// back into the running Experiment.
type Observer interface {
	// OnStep is called after every training step.
	OnStep(StepStat)
	// OnValidation is called after every mid-training validation pass
	// (requires WithValidationEvery).
	OnValidation(ValStat)
}

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are skipped.
type ObserverFuncs struct {
	Step       func(StepStat)
	Validation func(ValStat)
}

// OnStep implements Observer.
func (o ObserverFuncs) OnStep(s StepStat) {
	if o.Step != nil {
		o.Step(s)
	}
}

// OnValidation implements Observer.
func (o ObserverFuncs) OnValidation(v ValStat) {
	if o.Validation != nil {
		o.Validation(v)
	}
}

// progressLogger prints a line every N steps with the raw and smoothed
// loss, maintaining its own moving window (the paper's Fig 6 uses 10).
type progressLogger struct {
	w      io.Writer
	every  int
	window []float64
}

// NewProgressLogger returns an Observer that writes a progress line to w
// every `every` steps and for every validation pass.
func NewProgressLogger(w io.Writer, every int) Observer {
	if every < 1 {
		every = 1
	}
	return &progressLogger{w: w, every: every}
}

// OnStep implements Observer.
func (p *progressLogger) OnStep(s StepStat) {
	p.window = append(p.window, s.Loss)
	if len(p.window) > 10 {
		p.window = p.window[1:]
	}
	if s.Step%p.every != 0 && !s.Last {
		return
	}
	var sm float64
	for _, l := range p.window {
		sm += l
	}
	sm /= float64(len(p.window))
	fmt.Fprintf(p.w, "  step %3d  t=%6.1fs  loss %8.4f  (smoothed %8.4f)\n",
		s.Step, s.VirtualTime, s.Loss, sm)
}

// OnValidation implements Observer.
func (p *progressLogger) OnValidation(v ValStat) {
	fmt.Fprintf(p.w, "  step %3d  validation: mean IoU %.3f, accuracy %.3f\n",
		v.Step, v.MeanIoU, v.Accuracy)
}
