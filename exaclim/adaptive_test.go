package exaclim

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestAdaptiveOptionValidation covers the adaptive-serving knobs' input
// contracts: training rejects INT8, manual exit thresholds must be
// non-negative, and WithCalibratedExit wants an actual calibration.
func TestAdaptiveOptionValidation(t *testing.T) {
	if _, err := New(WithPrecision(INT8)); err == nil || !strings.Contains(err.Error(), "inference-only") {
		t.Errorf("WithPrecision(INT8) error = %v, want inference-only rejection", err)
	}
	m := serveModel(t)
	if _, err := NewServer(m, WithEarlyExit(-1)); err == nil {
		t.Error("WithEarlyExit(-1) accepted")
	}
	if _, err := NewServer(m, WithCalibratedExit(ExitCalibration{})); err == nil {
		t.Error("WithCalibratedExit with an empty head accepted")
	}
	if _, err := m.CalibrateExit(nil, SegmentConfig{Overlap: 2}, 1); err == nil {
		t.Error("CalibrateExit with no fields accepted")
	}
}

// TestCalibratedExitServesBitIdentical is the public end-to-end contract:
// serving the calibration fields through WithCalibratedExit produces masks
// bit-identical to full decodes, and the exit path resolves exactly the
// tile fraction the calibration predicted.
func TestCalibratedExitServesBitIdentical(t *testing.T) {
	// A briefly trained model: early-exit calibration needs a net whose
	// decodes actually separate storm tiles from background tiles (an
	// untrained net labels everything storm, leaving nothing to exit).
	exp, err := New(append(Quickstart(), WithSteps(40))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model
	ds := SyntheticDataset(48, 64, 3, 19)
	cfg := SegmentConfig{Overlap: 2}
	var fields []*tensor.Tensor
	for i := 0; i < ds.Size; i++ {
		fields = append(fields, ds.Sample(i).Fields)
	}

	cal, err := m.CalibrateExit(fields, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cal.ExitRate <= 0 {
		t.Fatalf("calibration predicts no exits (%+v); the test needs a mixed corpus", cal)
	}
	if math.IsInf(cal.Threshold, 0) || len(cal.Head.Weights) == 0 {
		t.Fatalf("implausible calibration %+v", cal)
	}

	s, err := NewServer(m, WithServeSegmentConfig(cfg), WithCalibratedExit(cal))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exited := 0
	for i, f := range fields {
		want, err := m.Segment(f, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, stat, err := s.Segment(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		for p, v := range want.Data() {
			if got.Data()[p] != v {
				t.Fatalf("sample %d: adaptive mask diverges from full decode at pixel %d", i, p)
			}
		}
		exited += stat.ExitedTiles
	}
	if want := int(math.Round(cal.ExitRate * float64(cal.Tiles))); exited != want {
		t.Errorf("served exits %d, calibration predicted %d of %d tiles", exited, want, cal.Tiles)
	}
	st := s.Stats()
	if st.ExitedTiles != uint64(exited) || st.ExitChecks == 0 {
		t.Errorf("server stats disagree with per-request exits: %+v", st)
	}
}

// TestServePrecisionParity: a server built with WithServePrecision produces
// the same masks as the single-threaded Model.Segment engine at that
// precision, for both reduced-precision kernel sets.
func TestServePrecisionParity(t *testing.T) {
	for _, prec := range []Precision{FP16, INT8} {
		m := serveModel(t)
		ds := SyntheticDataset(37, 45, 2, 23)
		cfg := SegmentConfig{Overlap: 2, Precision: prec}
		s, err := NewServer(m, WithMaxBatch(3),
			WithServeSegmentConfig(SegmentConfig{Overlap: 2}),
			WithServePrecision(prec))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ds.Size; i++ {
			want, err := m.Segment(ds.Sample(i).Fields, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := s.Segment(context.Background(), ds.Sample(i).Fields)
			if err != nil {
				t.Fatal(err)
			}
			for p, v := range want.Data() {
				if got.Data()[p] != v {
					t.Fatalf("%v: server mask diverges from Model.Segment on sample %d pixel %d", prec, i, p)
				}
			}
		}
		s.Close()
	}
}
