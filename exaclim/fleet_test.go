package exaclim

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFleetMatchesModelSegment(t *testing.T) {
	m := serveModel(t)
	ds := SyntheticDataset(48, 64, 2, 9)
	cfg := SegmentConfig{Overlap: 2}
	want, err := m.Segment(ds.Sample(0).Fields, cfg)
	if err != nil {
		t.Fatal(err)
	}

	f, err := NewFleet(m,
		WithShards(3),
		WithShardReplicas(2),
		WithFleetMaxBatch(4),
		WithAdmission(8),
		WithFleetSegmentConfig(cfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, stat, err := f.Segment(context.Background(), ds.Sample(0).Fields)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("fleet mask diverges from Model.Segment at pixel %d", i)
		}
	}
	if stat.Tiles < 2 || stat.Latency <= 0 || stat.Version != 0 {
		t.Errorf("implausible FleetStat %+v", stat)
	}
	st := f.Stats()
	if st.Requests != 1 || st.Tiles == 0 || st.VirtualReqPerSec <= 0 {
		t.Errorf("implausible FleetStats %+v", st)
	}
}

func TestFleetOptionValidation(t *testing.T) {
	m := serveModel(t)
	cases := [][]FleetOption{
		{WithShards(0)},
		{WithShardReplicas(0)},
		{WithAdmission(0)},
		{WithFleetMaxBatch(0)},
		{WithFleetQueueDepth(0)},
		{WithFleetEarlyExit(-1)},
		{WithHotSwap("", 0)},
	}
	for i, opts := range cases {
		if _, err := NewFleet(m, opts...); err == nil {
			t.Errorf("case %d: invalid fleet options accepted", i)
		}
	}
}

// TestFleetHotSwapFromTraining is the closed training→serving loop at the
// public API: a short run writes checkpoint snapshots, the run's own model
// serves behind a fleet, and the latest snapshot hot-swaps in — version
// advances, serving never stops.
func TestFleetHotSwapFromTraining(t *testing.T) {
	dir := t.TempDir()
	exp, err := New(append(ckptBase(dir), WithSteps(3))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || res.Checkpoints == 0 {
		t.Fatalf("run produced model=%v checkpoints=%d", res.Model != nil, res.Checkpoints)
	}

	f, err := NewFleet(res.Model, WithShards(2), WithFleetMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds := SyntheticDataset(32, 32, 1, 7)

	if _, stat, err := f.Segment(context.Background(), ds.Sample(0).Fields); err != nil || stat.Version != 0 {
		t.Fatalf("pre-swap request: version %d, err %v", stat.Version, err)
	}
	if err := f.SwapCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	_, stat, err := f.Segment(context.Background(), ds.Sample(0).Fields)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Version != 1 || stat.Step != 3 {
		t.Fatalf("post-swap request served by version %d step %d, want version 1 step 3", stat.Version, stat.Step)
	}
	if st := f.Stats(); st.Swaps != 1 || st.Version != 1 {
		t.Errorf("fleet stats after swap: %+v", st)
	}
}

// TestFleetHotSwapWatcher: WithHotSwap picks up snapshots written after
// the fleet started, under concurrent serving load.
func TestFleetHotSwapWatcher(t *testing.T) {
	dir := t.TempDir()
	m := serveModel(t)
	var versions sync.Map
	f, err := NewFleet(m,
		WithShards(2),
		WithHotSwap(dir, time.Millisecond),
		WithFleetObserver(func(st FleetStat) { versions.Store(st.Version, st.Step) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds := SyntheticDataset(16, 16, 1, 3)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, _, err := f.Segment(context.Background(), ds.Sample(0).Fields); err != nil {
				t.Errorf("segment under hot swap: %v", err)
				return
			}
		}
	}()

	// Train the same architecture (BuildModel resolves the same 16×16
	// window) and let the watcher roll its snapshot in mid-load.
	exp, err := New(append(ckptBase(dir), WithSteps(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Version == 0 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatal("hot-swap watcher never advanced the serving version")
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if _, ok := versions.Load(uint64(1)); !ok {
		// The watcher swapped, but load stopped before any request was
		// admitted on the new version; verify with one more request.
		if _, stat, err := f.Segment(context.Background(), ds.Sample(0).Fields); err != nil || stat.Version != 1 {
			t.Fatalf("no request ever served by the swapped version (stat %+v, err %v)", stat, err)
		}
	}
}
