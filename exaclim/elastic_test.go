package exaclim

import (
	"context"
	"errors"
	"testing"
)

func elasticBase(dir string) []Option {
	return []Option{
		WithNetwork("tiramisu", Tiny),
		WithSyntheticData(16, 16, 16, 9),
		WithSeed(4),
		WithGlobalBatch(4),
		WithCheckpointDir(dir),
		WithCheckpointEvery(3),
	}
}

// TestElasticResumeThroughAPI: the public twin of the rescale contract —
// an 4-rank snapshot resumed at 2 and 8 ranks continues the uninterrupted
// loss trajectory exactly.
func TestElasticResumeThroughAPI(t *testing.T) {
	run := func(dir string, ranks, steps int, extra ...Option) *Result {
		t.Helper()
		opts := append(elasticBase(dir), WithRanks(ranks, 1), WithSteps(steps))
		exp, err := New(append(opts, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	refDir := t.TempDir()
	ref := run(refDir, 4, 6)

	legDir := t.TempDir()
	run(legDir, 4, 3)

	info, err := InspectCheckpoint(legDir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 3 || info.Ranks != 4 || info.GlobalBatch != 4 || info.Seed != 4 {
		t.Fatalf("InspectCheckpoint: %+v", info)
	}

	for _, ranks := range []int{2, 8} {
		res := run(t.TempDir(), ranks, 6, WithElasticResume(legDir))
		if res.StartStep != 3 {
			t.Fatalf("ranks=%d resumed at %d", ranks, res.StartStep)
		}
		for i, s := range res.History {
			if s.Loss != ref.History[3+i].Loss {
				t.Fatalf("ranks=%d step %d loss %g, uninterrupted %g", ranks, s.Step, s.Loss, ref.History[3+i].Loss)
			}
		}
	}

	// Plain WithResume at a different world size stays a typed refusal.
	opts := append(elasticBase(t.TempDir())[:4], WithRanks(2, 1), WithSteps(6), WithResume(legDir))
	exp, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); !errors.Is(err, ErrCheckpointRankMismatch) {
		t.Fatalf("rank mismatch without elastic opt-in: %v", err)
	}
}

// TestNodeFailureThroughAPI: WithNodeFailure drains the step, restarts on
// the survivors, and Run reports one continuous stitched history.
func TestNodeFailureThroughAPI(t *testing.T) {
	dir := t.TempDir()
	opts := append(elasticBase(dir),
		WithRanks(4, 1),
		WithSteps(8),
		WithNodeFailure(1, 5),
	)
	exp, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 8 {
		t.Fatalf("stitched history has %d steps", len(res.History))
	}
	for i, s := range res.History {
		if s.Step != i {
			t.Fatalf("history entry %d is step %d", i, s.Step)
		}
	}
}

// TestElasticOptionValidation: incoherent elastic combinations fail at New.
func TestElasticOptionValidation(t *testing.T) {
	cases := [][]Option{
		{WithGlobalBatch(0)},
		{WithGlobalBatch(4), WithHybridAllReduce(), WithRanks(4, 2)},
		{WithGlobalBatch(4), WithWireFormat(WireFP16)},
		{WithElasticResume("")},
		{WithChurnPolicy(ChurnEASGD, 0, 0.5)},
		{WithNodeFailure(-1, 0)},
		{WithRanks(2, 1), WithNodeFailure(5, 0)}, // node out of range
	}
	for i, opts := range cases {
		if _, err := New(opts...); err == nil {
			t.Errorf("case %d: invalid elastic options accepted", i)
		}
	}
}
