package exaclim

import (
	"fmt"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Precision selects the arithmetic. For training, FP16 enables the
// loss-scaled mixed-precision path. For serving (SegmentConfig.Precision,
// WithServePrecision), FP16 and INT8 select the reduced-precision inference
// kernel sets; INT8 is inference-only.
type Precision = graph.Precision

// Re-exported precision values, so callers need no extra import.
const (
	FP32 = graph.FP32
	FP16 = graph.FP16
	INT8 = graph.INT8
)

// Climate class and channel constants, re-exported for callers reading
// Result.IoU or assembling channel subsets.
const (
	ClassBackground = climate.ClassBackground
	ClassTC         = climate.ClassTC
	ClassAR         = climate.ClassAR
	NumClasses      = climate.NumClasses
	NumChannels     = climate.NumChannels
)

// PizDaintChannels is the 4-channel input subset of the early Piz Daint
// experiments (TMQ, PSL, U850, V850).
var PizDaintChannels = climate.PizDaintChannels

// ModelConfig sizes a network build. Zero fields take defaults: batch 1,
// all 16 input channels, 3 classes, and the experiment dataset's grid (or
// 24×32 when built standalone).
type ModelConfig struct {
	BatchSize  int
	InChannels int
	NumClasses int
	Height     int
	Width      int
	// Symbolic builds shape-only parameters — not trainable, but analyzable
	// at the paper's 1152×768×16 scale without allocating gigabytes.
	Symbolic bool
	Seed     int64
}

func (c ModelConfig) withDefaults(h, w int) ModelConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.InChannels == 0 {
		c.InChannels = climate.NumChannels
	}
	if c.NumClasses == 0 {
		c.NumClasses = climate.NumClasses
	}
	if c.Height == 0 {
		c.Height = h
	}
	if c.Width == 0 {
		c.Width = w
	}
	return c
}

// Option configures an Experiment. Options that can fail (registry
// lookups, inconsistent combinations) surface their error from New.
type Option func(*options)

type options struct {
	err error

	network string
	size    Size
	model   ModelConfig

	precision Precision
	lossScale float64

	optimizer string
	lr        float64
	larc      bool
	larcTrust float64
	lag       int

	schedule  func(step int) float64
	polyDecay bool
	polyEnd   float64
	polyPower float64
	warmup    int

	weighting string
	channels  []int

	dataset *climate.Dataset
	synth   *synthSpec

	ranks   int
	perNode int
	fabric  simnet.Fabric
	summit  bool

	hybrid      bool
	radix       int
	flatCtl     bool
	noOverlap   bool
	fusionBytes int
	wire        WireFormat

	steps       int
	seed        int64
	valSize     int
	valEvery    int
	stepSeconds float64

	workspace     WorkspacePolicy
	kernelWorkers int
	kernelISA     string

	observers []Observer
	initCkpt  string

	ckptEvery  int
	ckptDir    string
	ckptRetain int
	ckptSync   bool
	resume     string

	elasticResume bool
	globalBatch   int
	compactSnaps  bool
	churn         core.ChurnPolicy
	failures      []nodeFailure
}

type nodeFailure struct{ node, atStep int }

type synthSpec struct {
	height, width, samples int
	seed                   int64
}

func defaultOptions() *options {
	return &options{
		network:   "tiramisu",
		size:      Tiny,
		precision: FP32,
		optimizer: "adam",
		lr:        3e-3,
		weighting: "sqrt",
		ranks:     1,
		perNode:   1,
		radix:     4,
		steps:     30,
		seed:      1,
	}
}

// WithNetwork selects a registered network ("tiramisu", "deeplab") at a
// size (Tiny, Paper, Original). Default: "tiramisu" at Tiny.
func WithNetwork(name string, size Size) Option {
	return func(o *options) { o.network, o.size = name, size }
}

// WithModelConfig overrides the network build parameters. Only non-zero
// fields are applied, so it composes with WithInputSize and repeated uses
// rather than silently discarding them; unset fields still take their
// defaults (see ModelConfig).
func WithModelConfig(c ModelConfig) Option {
	return func(o *options) {
		if c.BatchSize != 0 {
			o.model.BatchSize = c.BatchSize
		}
		if c.InChannels != 0 {
			o.model.InChannels = c.InChannels
		}
		if c.NumClasses != 0 {
			o.model.NumClasses = c.NumClasses
		}
		if c.Height != 0 {
			o.model.Height = c.Height
		}
		if c.Width != 0 {
			o.model.Width = c.Width
		}
		if c.Symbolic {
			o.model.Symbolic = true
		}
		if c.Seed != 0 {
			o.model.Seed = c.Seed
		}
	}
}

// WithInputSize sets the network's input grid. It normally follows the
// dataset's grid automatically; set it only to train on crops.
func WithInputSize(height, width int) Option {
	return func(o *options) { o.model.Height, o.model.Width = height, width }
}

// WithPrecision selects FP32 or FP16 (loss-scaled mixed precision) for
// training. INT8 is rejected: quantized kernels exist only on the inference
// path (use WithServePrecision or SegmentConfig.Precision).
func WithPrecision(p Precision) Option {
	return func(o *options) {
		if p == INT8 {
			o.err = fmt.Errorf("exaclim: INT8 is inference-only; WithPrecision accepts FP32 or FP16")
			return
		}
		o.precision = p
	}
}

// WithLossScale sets the FP16 static loss scale (default 1024, adapted
// dynamically on overflow).
func WithLossScale(scale float64) Option {
	return func(o *options) { o.lossScale = scale }
}

// WithOptimizer selects a registered optimizer ("adam", "sgd").
func WithOptimizer(name string) Option {
	return func(o *options) { o.optimizer = name }
}

// WithLR sets the (initial) learning rate.
func WithLR(lr float64) Option {
	return func(o *options) { o.lr = lr }
}

// WithLARC enables layer-wise adaptive rate control with the given trust
// coefficient (0 → the paper's 0.01).
func WithLARC(trust float64) Option {
	return func(o *options) { o.larc, o.larcTrust = true, trust }
}

// WithGradientLag delays gradient application by n steps, overlapping the
// all-reduce with the next forward pass (§V-B4; the paper uses lag 1).
func WithGradientLag(n int) Option {
	return func(o *options) { o.lag = n }
}

// WithLRSchedule overrides the learning rate before each step; WithLR then
// only sets the initial rate. Mutually exclusive with WithPolynomialDecay.
func WithLRSchedule(f func(step int) float64) Option {
	return func(o *options) { o.schedule = f }
}

// WithPolynomialDecay decays the learning rate from WithLR's value to end
// over the run with the given power (1 = linear).
func WithPolynomialDecay(end, power float64) Option {
	return func(o *options) { o.polyDecay, o.polyEnd, o.polyPower = true, end, power }
}

// WithWarmup ramps the learning rate linearly from 0 over the first n
// steps, composing with any schedule.
func WithWarmup(steps int) Option {
	return func(o *options) { o.warmup = steps }
}

// WithWeighting selects a registered per-pixel loss weighting ("none",
// "inv", "sqrt"). Default: "sqrt", the paper's 1/√f.
func WithWeighting(name string) Option {
	return func(o *options) { o.weighting = name }
}

// WithChannels restricts the input to a subset of the 16 climate channels
// (e.g. PizDaintChannels) and sizes the network input accordingly.
func WithChannels(channels ...int) Option {
	return func(o *options) { o.channels = channels }
}

// WithDataset trains on a caller-provided dataset instead of the default
// synthetic one.
func WithDataset(ds *climate.Dataset) Option {
	return func(o *options) { o.dataset = ds }
}

// WithSyntheticData generates a deterministic synthetic CAM5-style dataset
// of the given grid and size. The network input follows the grid unless
// WithInputSize overrides it.
func WithSyntheticData(height, width, samples int, seed int64) Option {
	return func(o *options) {
		o.synth = &synthSpec{height: height, width: width, samples: samples, seed: seed}
	}
}

// WithRanks runs data-parallel training over ranks simulated GPUs packed
// gpusPerNode to a node; ranks must divide evenly into nodes. With more
// than one GPU per node the default fabric is two-level (NVLink-class
// intra-node, fat-tree-class inter-node).
func WithRanks(ranks, gpusPerNode int) Option {
	return func(o *options) { o.ranks, o.perNode = ranks, gpusPerNode }
}

// WithFabric substitutes a custom interconnect topology. It must agree
// with WithRanks' world size.
func WithFabric(f simnet.Fabric) Option {
	return func(o *options) { o.fabric = f }
}

// WithSummitFabric models Summit's interconnect (6 GPUs per node over
// NVLink, EDR InfiniBand between nodes). Requires WithRanks(n, 6).
func WithSummitFabric() Option {
	return func(o *options) { o.summit = true }
}

// WithHybridAllReduce reduces gradients hierarchically — NVLink within a
// node, ring across node leaders — instead of one flat ring (§V-A2).
func WithHybridAllReduce() Option {
	return func(o *options) { o.hybrid = true }
}

// WithControlTree sets the radix of the hierarchical Horovod control plane
// (default 4, the paper's choice).
func WithControlTree(radix int) Option {
	return func(o *options) { o.radix = radix }
}

// WithFlatControlPlane uses the original rank-0-coordinated Horovod
// control plane — the scaling bottleneck §V-A3 removes.
func WithFlatControlPlane() Option {
	return func(o *options) { o.flatCtl = true }
}

// WithCommOverlap toggles the overlapped gradient exchange (default on):
// each rank's gradients are fused into size-capped buckets and all-reduced
// by a background goroutine while the backward pass is still computing
// earlier layers, with sample generation prefetched alongside. Disabling
// it runs the identical bucket-planned exchange synchronously after
// backward — bit-identical weights at FP32, no overlap. Every StepStat
// reports the achieved overlap fraction.
func WithCommOverlap(enabled bool) Option {
	return func(o *options) { o.noOverlap = !enabled }
}

// WithFusionBufferBytes caps the fused payload of one gradient-exchange
// bucket (default 64 KiB). Larger buckets amortize collective latency over
// more bytes; smaller ones start reducing earlier in the backward pass.
func WithFusionBufferBytes(n int) Option {
	return func(o *options) {
		if n < 4 {
			o.err = fmt.Errorf("exaclim: WithFusionBufferBytes wants n ≥ 4, got %d", n)
			return
		}
		o.fusionBytes = n
	}
}

// WireFormat selects the gradient all-reduce wire format.
type WireFormat = mpi.Wire

// Wire formats, re-exported so callers need no extra import. WireFP16
// halves the bytes the (simulated) cross-node fabric carries — gradients
// are rounded to binary16 on send and accumulated in FP32 on receive, the
// paper's mixed-precision communication datapath — at a bounded precision
// cost. Under the hybrid all-reduce only the cross-node phase converts;
// NVLink-class intra-node traffic stays FP32.
const (
	WireFP32 = mpi.WireFP32
	WireFP16 = mpi.WireFP16
)

// WithWireFormat sets the all-reduce wire format (default WireFP32).
func WithWireFormat(w WireFormat) Option {
	return func(o *options) { o.wire = w }
}

// WithSteps sets the number of training steps.
func WithSteps(n int) Option {
	return func(o *options) { o.steps = n }
}

// WithSeed sets the experiment seed (data sharding, weight init, dropout).
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithValidation evaluates IoU over n validation samples after training.
func WithValidation(n int) Option {
	return func(o *options) { o.valSize = n }
}

// WithValidationEvery additionally runs the validation pass every n steps,
// recording the trajectory in Result.ValHistory and streaming it to
// observers. Requires WithValidation.
func WithValidationEvery(n int) Option {
	return func(o *options) { o.valEvery = n }
}

// WithStepComputeSeconds charges virtual GPU time per step so loss-vs-time
// curves come out at paper-like scales.
func WithStepComputeSeconds(s float64) Option {
	return func(o *options) { o.stepSeconds = s }
}

// WorkspacePolicy selects how per-rank execution memory is managed; see
// the constants for the two policies.
type WorkspacePolicy = core.WorkspacePolicy

// Workspace policies, re-exported so callers need no extra import.
const (
	// WorkspacePooled (the default) gives every rank a persistent buffer
	// pool and a reusing graph executor: activations, gradients, and kernel
	// scratch are recycled across steps, which keeps the hot path
	// FLOP-bound instead of allocator-bound.
	WorkspacePooled = core.WorkspacePooled
	// WorkspaceFresh restores step-fresh allocation (a new executor and new
	// tensors every step) — useful for debugging at a large throughput
	// cost.
	WorkspaceFresh = core.WorkspaceFresh
)

// WithWorkspacePolicy overrides the execution-memory policy (default
// WorkspacePooled). Allocation/reuse counters appear on every StepStat and
// on Result.Memory either way.
func WithWorkspacePolicy(p WorkspacePolicy) Option {
	return func(o *options) { o.workspace = p }
}

// WithKernelWorkers sets the goroutine fan-out of the tensor compute
// kernels (GEMM tiles, im2col, elementwise loops) for the run. The setting
// is process-wide while the experiment runs and restored afterwards, so
// concurrent experiments in one process share it (last setter wins) — use
// it only when runs are serialized. n < 1 is rejected; omit the option
// entirely to keep the current setting (GOMAXPROCS at startup).
func WithKernelWorkers(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithKernelWorkers wants n ≥ 1, got %d", n)
			return
		}
		o.kernelWorkers = n
	}
}

// WithKernelISA pins the tensor-kernel instruction set for the run:
// "scalar" forces the portable reference kernels (bit-reproducible across
// machines), "avx2" requires the AVX2+FMA kernels (an error surfaces from
// the run on hardware without them), and "auto" picks the best supported
// set. Like WithKernelWorkers the setting is process-wide while the
// experiment runs and restored afterwards. Bit-exact resume requires
// resuming under the same ISA the checkpoint was written under; omit the
// option to keep the current setting.
func WithKernelISA(isa string) Option {
	return func(o *options) {
		if _, err := tensor.ParseISA(isa); err != nil {
			o.err = fmt.Errorf("exaclim: WithKernelISA: %w", err)
			return
		}
		o.kernelISA = isa
	}
}

// WithObserver streams progress to obs during Run. May be given multiple
// times; observers are invoked in registration order.
func WithObserver(obs Observer) Option {
	return func(o *options) {
		if obs != nil {
			o.observers = append(o.observers, obs)
		}
	}
}

// WithInitCheckpoint initializes every rank's replica from a weights-only
// checkpoint written by Model.SaveCheckpoint before training starts. This
// is warm-starting, not resumption: optimizer moments, the FP16 loss
// scaler, the data-stream cursors, and the step counter all start fresh.
// To continue an interrupted run exactly, use WithResume with a full-state
// snapshot from WithCheckpointEvery instead.
func WithInitCheckpoint(path string) Option {
	return func(o *options) { o.initCkpt = path }
}

// WithCheckpointEvery writes a full training-state snapshot every n steps:
// weights, optimizer moments (Adam/SGD, LARC, the gradient-lag queue), the
// FP16 loss scaler, every rank's data-stream cursor, and the step counter.
// Rank 0 captures the state at the step boundary (a memory copy) and a
// background writer commits it atomically — ckpt-<step>.snap via temp file
// and rename — so training never waits on the disk and a crash mid-write
// cannot corrupt a committed snapshot. Requires WithCheckpointDir.
func WithCheckpointEvery(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithCheckpointEvery wants n ≥ 1, got %d", n)
			return
		}
		o.ckptEvery = n
	}
}

// WithCheckpointDir sets the snapshot directory for WithCheckpointEvery
// (created if missing). A fresh run refuses a directory that already holds
// another run's snapshots — retention prunes by step order, so writing a
// new run under stale higher-step files would silently lose every new
// checkpoint. Resume with WithResume or clear the directory.
func WithCheckpointDir(dir string) Option {
	return func(o *options) {
		if dir == "" {
			o.err = fmt.Errorf("exaclim: WithCheckpointDir wants a non-empty path")
			return
		}
		o.ckptDir = dir
	}
}

// WithCheckpointRetain keeps the newest n committed snapshots, deleting
// older ones after each write (default 3; the newest is never deleted).
func WithCheckpointRetain(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithCheckpointRetain wants n ≥ 1, got %d", n)
			return
		}
		o.ckptRetain = n
	}
}

// WithCheckpointSync additionally fsyncs every snapshot before its atomic
// rename. Commit atomicity never depends on this — the rename alone covers
// every process-level failure (preemption, walltime kill, crash) — but
// sync extends the guarantee to host power loss, at the cost of stalling
// the background writer on each journal commit. Off by default.
func WithCheckpointSync(enabled bool) Option {
	return func(o *options) { o.ckptSync = enabled }
}

// WithResume continues training from a full-state snapshot: path may be a
// snapshot file or a checkpoint directory (the latest committed snapshot
// inside it is used). WithSteps still counts the whole run: resuming a
// 2000-step run from a step-1000 snapshot trains 1000 more steps, and the
// result is bit-identical to never having been interrupted — weights,
// optimizer moments, and loss-scaler state included. The snapshot's rank
// count and seed must match the experiment's; mismatches fail at Run
// (ErrCheckpointRankMismatch — use WithElasticResume to rescale instead).
// Mutually exclusive with WithInitCheckpoint.
func WithResume(path string) Option {
	return func(o *options) {
		if path == "" {
			o.err = fmt.Errorf("exaclim: WithResume wants a non-empty path")
			return
		}
		o.resume = path
	}
}

// WithElasticResume is WithResume without the world-size pin: the snapshot
// may resume at any WithRanks value. Weights, optimizer moments, and the
// loss scaler are replicated state and carry over unchanged; the per-column
// data cursors re-shard so the global sample sequence is preserved exactly.
// For power-of-two world sizes and global batches the continued loss
// trajectory is bit-exact per global batch against the uninterrupted run
// (the determinism contract TestElasticResume pins); other shapes keep the
// exact data order but may differ in final bits. The snapshot's seed and
// global batch must still match the experiment's. Mutually exclusive with
// WithResume and WithInitCheckpoint.
func WithElasticResume(path string) Option {
	return func(o *options) {
		if path == "" {
			o.err = fmt.Errorf("exaclim: WithElasticResume wants a non-empty path")
			return
		}
		o.resume = path
		o.elasticResume = true
	}
}

// WithGlobalBatch trains over n data columns per step regardless of the
// world size, making the trained trajectory a function of the global batch
// alone: ranks split the columns contiguously (worlds larger than the batch
// keep the extra ranks as hot spares), gradients combine in a canonical
// world-size-invariant order, and the epilogue averages over n. This is the
// foundation WithElasticResume's rescale contract stands on. Requires the
// bucketed exchange (default), the flat reducer, and the FP32 wire format.
// Default 0: legacy one-column-per-rank behaviour.
func WithGlobalBatch(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.err = fmt.Errorf("exaclim: WithGlobalBatch wants n ≥ 1, got %d", n)
			return
		}
		o.globalBatch = n
	}
}

// WithSnapshotCompaction writes compacted (v3 delta) snapshots: weights are
// byte-shuffled and DEFLATEd losslessly, Adam moment slots are additionally
// range-quantized to 8-bit codes — at least 2× smaller on trained state.
// Resuming from a compacted snapshot restores weights bit-exactly; the
// dequantized moments re-adapt within a few steps, so the continuation is
// approximate rather than bit-exact. CRC framing, atomic commit, and the
// typed load errors are unchanged, and both forms load interchangeably.
func WithSnapshotCompaction(enabled bool) Option {
	return func(o *options) { o.compactSnaps = enabled }
}

// ChurnMode selects how an elastic run behaves across membership churn; see
// the re-exported modes.
type ChurnMode = core.ChurnMode

// Churn modes, re-exported so callers need no extra import.
const (
	// ChurnStrict (default): on a node failure the step drains and the run
	// restarts from the last snapshot at the surviving world size —
	// deterministic, at the cost of the steps since the last checkpoint.
	ChurnStrict = core.ChurnStrict
	// ChurnEASGD: workers train independently on their column shares and
	// synchronize through an elastic-averaging center every period steps —
	// survives churn without replaying, but restarts are only
	// deterministic-from-snapshot, not bit-exact.
	ChurnEASGD = core.ChurnEASGD
)

// WithChurnPolicy sets the membership-churn consistency mode. period and
// rho configure ChurnEASGD (the synchronization period τ and the elastic
// coefficient ρ; the moving rate is LR·ρ) and are ignored under
// ChurnStrict. ChurnEASGD implies a global batch (defaulting to the rank
// count) and requires any WithCheckpointEvery cadence to be a multiple of
// period, so snapshots capture a freshly-averaged center.
func WithChurnPolicy(mode ChurnMode, period int, rho float64) Option {
	return func(o *options) {
		if mode == ChurnEASGD && (period < 1 || rho <= 0) {
			o.err = fmt.Errorf("exaclim: WithChurnPolicy(ChurnEASGD) wants period ≥ 1 and rho > 0, got %d and %g", period, rho)
			return
		}
		o.churn = core.ChurnPolicy{Mode: mode, Period: period, Rho: rho}
	}
}

// WithNodeFailure schedules simulated node `node` to fail at training step
// `atStep`: every rank it hosts stops contributing, the in-flight step
// drains collectively on all ranks and is discarded, and the run restarts
// from the last committed snapshot (step 0 when none) on the survivors at
// the same virtual clock — the mid-run membership-churn experiment. May be
// given multiple times. Implies a global batch (defaulting to the rank
// count) so the restarted world trains the same trajectory.
func WithNodeFailure(node, atStep int) Option {
	return func(o *options) {
		if node < 0 || atStep < 0 {
			o.err = fmt.Errorf("exaclim: WithNodeFailure(%d, %d) wants node ≥ 0 and step ≥ 0", node, atStep)
			return
		}
		o.failures = append(o.failures, nodeFailure{node: node, atStep: atStep})
	}
}
