package exaclim_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/exaclim"
)

// Example_trainCheckpointResume shows the fault-tolerance workflow: train
// with full-state snapshots, get preempted, and resume bit-exactly —
// weights, optimizer moments, loss-scaler, and data cursors all continue
// as if the interruption never happened. WithSteps always counts the whole
// run, so the resumed experiment uses the same option list plus WithResume.
func Example_trainCheckpointResume() {
	dir, err := os.MkdirTemp("", "exaclim-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := func(steps int, extra ...exaclim.Option) []exaclim.Option {
		return append([]exaclim.Option{
			exaclim.WithNetwork("tiramisu", exaclim.Tiny),
			exaclim.WithSyntheticData(16, 16, 16, 42),
			exaclim.WithRanks(2, 1),
			exaclim.WithSeed(7),
			exaclim.WithSteps(steps),
			exaclim.WithCheckpointDir(dir),
			exaclim.WithCheckpointEvery(5),
		}, extra...)
	}

	// The "interrupted" run: 5 of the planned 10 steps, then the process
	// dies (here: the experiment simply ends after 5).
	exp, err := exaclim.New(opts(5)...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Recovery: find and verify the newest committed snapshot…
	path, step, err := exaclim.LatestCheckpoint(dir)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := exaclim.VerifyCheckpoint(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot committed at step %d\n", step)

	// …and resume the full 10-step run from it.
	exp, err = exaclim.New(opts(10, exaclim.WithResume(dir))...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed at step %d, trained %d more steps\n", res.StartStep, len(res.History))
	fmt.Printf("checkpoints committed by the resumed run: %d\n", res.Checkpoints)
	// Output:
	// snapshot committed at step 5
	// resumed at step 5, trained 5 more steps
	// checkpoints committed by the resumed run: 1
}

// Example_serving stands up the concurrent segmentation server over a
// model and serves one request; arbitrary-size fields are tiled, batched
// across requests, and stitched back into one class mask.
func Example_serving() {
	model, err := exaclim.BuildModel("tiramisu", exaclim.Tiny,
		exaclim.ModelConfig{Height: 16, Width: 16, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := exaclim.NewServer(model,
		exaclim.WithReplicas(1), exaclim.WithMaxBatch(4))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// A 32×32 field over a 16×16 model window → four tiles, one batch.
	sample := exaclim.SyntheticDataset(32, 32, 1, 5).Sample(0)
	mask, stat, err := srv.Segment(context.Background(), sample.Fields)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mask %v from %d tiles\n", mask.Shape(), stat.Tiles)
	// Output:
	// mask [32 32] from 4 tiles
}
