package exaclim

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveModel builds a small untrained tiramisu for serving tests (serving
// correctness is weight-independent).
func serveModel(t *testing.T) *Model {
	t.Helper()
	m, err := BuildModel("tiramisu", Tiny, ModelConfig{Height: 16, Width: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServerMatchesModelSegment(t *testing.T) {
	m := serveModel(t)
	ds := SyntheticDataset(48, 64, 2, 9)
	cfg := SegmentConfig{Overlap: 2}
	want, err := m.Segment(ds.Sample(0).Fields, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewServer(m,
		WithReplicas(2),
		WithMaxBatch(4),
		WithQueueDepth(64),
		WithBatchDeadline(100*time.Microsecond),
		WithServeSegmentConfig(cfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, stat, err := s.Segment(context.Background(), ds.Sample(0).Fields)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("server mask diverges from Model.Segment at pixel %d", i)
		}
	}
	if stat.Tiles < 2 || stat.Latency <= 0 {
		t.Errorf("implausible ServeStat %+v", stat)
	}
	st := s.Stats()
	if st.Requests != 1 || st.Tiles == 0 || st.LatencyP99 <= 0 {
		t.Errorf("implausible ServerStats %+v", st)
	}
}

func TestServerObserverStreams(t *testing.T) {
	m := serveModel(t)
	var mu sync.Mutex
	var stats []ServeStat
	s, err := NewServer(m, WithServeObserver(func(st ServeStat) {
		mu.Lock()
		stats = append(stats, st)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ds := SyntheticDataset(16, 16, 1, 3)
	for i := 0; i < 3; i++ {
		if _, _, err := s.Segment(context.Background(), ds.Sample(0).Fields); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stats) != 3 {
		t.Fatalf("observer saw %d stats, want 3", len(stats))
	}
	for _, st := range stats {
		if st.Tiles != 1 || st.Failed {
			t.Errorf("unexpected streamed stat %+v", st)
		}
	}
}

func TestServerOptionValidation(t *testing.T) {
	m := serveModel(t)
	for name, opt := range map[string]ServerOption{
		"replicas":  WithReplicas(0),
		"max batch": WithMaxBatch(-1),
		"queue":     WithQueueDepth(0),
		"deadline":  WithBatchDeadline(-time.Second),
	} {
		if _, err := NewServer(m, opt); err == nil {
			t.Errorf("%s: NewServer accepted an invalid value", name)
		}
	}
	if _, err := NewServer(m, WithServeSegmentConfig(SegmentConfig{Overlap: -2})); err == nil {
		t.Error("negative overlap should fail")
	}
}

// TestSegmentConfigValidation covers the satellite requirement: negative
// or inconsistent SegmentConfig fields fail with field-specific messages
// instead of falling through to the internal layer.
func TestSegmentConfigValidation(t *testing.T) {
	m := serveModel(t)
	ds := SyntheticDataset(32, 32, 1, 3)
	fields := ds.Sample(0).Fields
	for name, tc := range map[string]struct {
		cfg  SegmentConfig
		want string
	}{
		"negative overlap":   {SegmentConfig{Overlap: -3}, "Overlap"},
		"negative tile":      {SegmentConfig{TileH: -16, TileW: 16}, "tile"},
		"negative max batch": {SegmentConfig{MaxBatch: -2}, "MaxBatch"},
		"window mismatch":    {SegmentConfig{TileH: 8, TileW: 8}, "window"},
		"overlap eats tile":  {SegmentConfig{Overlap: 8}, "interior"},
	} {
		_, err := m.Segment(fields, tc.cfg)
		if err == nil {
			t.Errorf("%s: Segment accepted %+v", name, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestModelSegmentCachesEngine covers the satellite requirement: repeated
// Segment calls reuse the cached engine, and a config change rebuilds it.
func TestModelSegmentCachesEngine(t *testing.T) {
	m := serveModel(t)
	ds := SyntheticDataset(32, 48, 1, 7)
	fields := ds.Sample(0).Fields
	a, err := m.Segment(fields, SegmentConfig{Overlap: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1 := m.runner
	if r1 == nil {
		t.Fatal("no engine cached after Segment")
	}
	b, err := m.Segment(fields, SegmentConfig{Overlap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.runner != r1 {
		t.Error("engine rebuilt for an identical config")
	}
	for i, v := range a.Data() {
		if b.Data()[i] != v {
			t.Fatalf("cached engine diverges at pixel %d", i)
		}
	}
	if _, err := m.Segment(fields, SegmentConfig{Overlap: 2, MaxBatch: 4}); err != nil {
		t.Fatal(err)
	}
	if m.runner == r1 {
		t.Error("engine not rebuilt for a changed config")
	}
}

func TestServerSegmentsBatchedBitIdentical(t *testing.T) {
	// The public acceptance property: serial Model.Segment, batched
	// Model.Segment, and the concurrent Server produce identical masks.
	m := serveModel(t)
	ds := SyntheticDataset(37, 45, 3, 21) // non-divisible grid
	serialMasks := make([][]float32, 3)
	for i := range serialMasks {
		mask, err := m.Segment(ds.Sample(i).Fields, SegmentConfig{Overlap: 2})
		if err != nil {
			t.Fatal(err)
		}
		serialMasks[i] = append([]float32(nil), mask.Data()...)
	}
	for i := 0; i < 3; i++ {
		mask, err := m.Segment(ds.Sample(i).Fields, SegmentConfig{Overlap: 2, MaxBatch: 5})
		if err != nil {
			t.Fatal(err)
		}
		for p, v := range serialMasks[i] {
			if mask.Data()[p] != v {
				t.Fatalf("batched Segment diverges on sample %d pixel %d", i, p)
			}
		}
	}
	s, err := NewServer(m, WithMaxBatch(5), WithServeSegmentConfig(SegmentConfig{Overlap: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mask, _, err := s.Segment(context.Background(), ds.Sample(i).Fields)
			if err != nil {
				t.Error(err)
				return
			}
			for p, v := range serialMasks[i] {
				if mask.Data()[p] != v {
					t.Errorf("server diverges on sample %d pixel %d", i, p)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
