package exaclim

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/loss"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// TestOptionsApplyToConfig checks that every functional option lands on the
// corresponding core.Config field.
func TestOptionsApplyToConfig(t *testing.T) {
	exp, err := New(
		WithNetwork("deeplab", Tiny),
		WithSyntheticData(16, 16, 12, 3),
		WithPrecision(FP16),
		WithLossScale(512),
		WithOptimizer("sgd"),
		WithLR(5e-3),
		WithLARC(0.02),
		WithGradientLag(1),
		WithWeighting("inv"),
		WithRanks(4, 2),
		WithHybridAllReduce(),
		WithControlTree(2),
		WithSteps(7),
		WithSeed(99),
		WithValidation(2),
		WithValidationEvery(3),
		WithStepComputeSeconds(0.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exp.cfg
	if cfg.Precision != FP16 || cfg.LossScale != 512 {
		t.Errorf("precision/loss scale: %v/%v", cfg.Precision, cfg.LossScale)
	}
	if cfg.Optimizer != core.SGD || cfg.LR != 5e-3 {
		t.Errorf("optimizer/lr: %v/%v", cfg.Optimizer, cfg.LR)
	}
	if !cfg.UseLARC || cfg.LARCTrust != 0.02 || cfg.GradientLag != 1 {
		t.Errorf("larc/lag: %v/%v/%v", cfg.UseLARC, cfg.LARCTrust, cfg.GradientLag)
	}
	if cfg.Weighting != loss.InverseFrequency {
		t.Errorf("weighting: %v", cfg.Weighting)
	}
	if cfg.Ranks != 4 || !cfg.HybridReduce || cfg.Horovod.Radix != 2 {
		t.Errorf("ranks/hybrid/radix: %v/%v/%v", cfg.Ranks, cfg.HybridReduce, cfg.Horovod.Radix)
	}
	if cfg.Fabric == nil || cfg.Fabric.Size() != 4 || cfg.Fabric.RanksPerNode() != 2 {
		t.Errorf("fabric: %+v", cfg.Fabric)
	}
	if cfg.Steps != 7 || cfg.Seed != 99 || cfg.ValidationSize != 2 || cfg.ValidateEvery != 3 {
		t.Errorf("steps/seed/validation: %v/%v/%v/%v",
			cfg.Steps, cfg.Seed, cfg.ValidationSize, cfg.ValidateEvery)
	}
	if cfg.StepComputeSeconds != 0.25 {
		t.Errorf("step seconds: %v", cfg.StepComputeSeconds)
	}
	if cfg.Dataset == nil || cfg.Dataset.Size != 12 || cfg.Dataset.Cfg.Height != 16 {
		t.Errorf("dataset: %+v", cfg.Dataset)
	}
	if exp.model.Height != 16 || exp.model.Width != 16 || exp.model.InChannels != NumChannels {
		t.Errorf("model config did not follow dataset: %+v", exp.model)
	}
	// The network builder must build what was registered.
	net, err := cfg.BuildNet()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(net.Name, "deeplab") {
		t.Errorf("built network %q, want a deeplab", net.Name)
	}
}

func TestLRScheduleOptions(t *testing.T) {
	exp, err := New(WithLR(1e-2), WithSteps(10), WithPolynomialDecay(1e-3, 1), WithWarmup(2))
	if err != nil {
		t.Fatal(err)
	}
	sched := exp.cfg.LRSchedule
	if sched == nil {
		t.Fatal("no LR schedule built")
	}
	if sched(0) >= sched(1) || sched(1) > 1e-2 {
		t.Errorf("warmup not ramping: lr(0)=%v lr(1)=%v", sched(0), sched(1))
	}
	if lr := sched(10); math.Abs(lr-1e-3) > 1e-9 {
		t.Errorf("decayed lr = %v, want 1e-3", lr)
	}
	if _, err := New(WithPolynomialDecay(1e-3, 1), WithLRSchedule(func(int) float64 { return 1 })); err == nil {
		t.Error("schedule + poly decay should conflict")
	}
}

// TestRegistryErrors checks the "unknown name, valid: …" contract for all
// three registries.
func TestRegistryErrors(t *testing.T) {
	cases := []struct {
		opt   Option
		wants []string
	}{
		{WithNetwork("resnet", Tiny), []string{`unknown network "resnet"`, "deeplab", "tiramisu"}},
		{WithOptimizer("lamb"), []string{`unknown optimizer "lamb"`, "adam", "sgd"}},
		{WithWeighting("log"), []string{`unknown weighting "log"`, "inv", "none", "sqrt"}},
	}
	for _, c := range cases {
		_, err := New(c.opt)
		if err == nil {
			t.Fatalf("%v: no error", c.wants)
		}
		for _, w := range c.wants {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("error %q does not mention %q", err, w)
			}
		}
	}
	if names := Networks(); len(names) != 2 || names[0] != "deeplab" {
		t.Errorf("Networks() = %v", names)
	}
}

func TestBadCombinations(t *testing.T) {
	if _, err := New(WithRanks(5, 2)); err == nil {
		t.Error("ranks not divisible by gpus-per-node should fail")
	}
	if _, err := New(WithValidationEvery(2)); err == nil {
		t.Error("ValidationEvery without Validation should fail")
	}
	if _, err := New(WithFabric(simnet.Loopback(3)), WithRanks(2, 1)); err == nil {
		t.Error("fabric/ranks size mismatch should fail")
	}
	if _, err := New(WithRanks(4, 2), WithSummitFabric()); err == nil {
		t.Error("Summit fabric with 2 GPUs per node should fail")
	}
}

// TestQuickstartSmokeTrain runs the Quickstart preset briefly and expects a
// falling loss plus validation metrics.
func TestQuickstartSmokeTrain(t *testing.T) {
	exp, err := New(append(Quickstart(), WithSteps(20))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 20 {
		t.Fatalf("history length %d, want 20", len(res.History))
	}
	if !res.LossImproved(0.1) {
		t.Errorf("loss did not improve: %.3f → %.3f", res.History[0].Loss, res.FinalLoss)
	}
	if len(res.IoU) != NumClasses || res.Accuracy <= 0 {
		t.Errorf("validation missing: IoU %v accuracy %v", res.IoU, res.Accuracy)
	}
	if res.Model == nil {
		t.Fatal("no trained model on the result")
	}
	if h, w := res.Model.InputSize(); h != 24 || w != 32 {
		t.Errorf("model input %dx%d", h, w)
	}
}

// TestSummitScalePreset resolves and briefly runs the paper's DeepLabv3+
// configuration at one Summit node.
func TestSummitScalePreset(t *testing.T) {
	exp, err := New(append(SummitScale(6), WithSteps(4), WithValidation(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if exp.cfg.Precision != FP16 || !exp.cfg.HybridReduce || exp.cfg.GradientLag != 1 {
		t.Fatalf("preset lost paper settings: %+v", exp.cfg)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 4 || math.IsNaN(res.FinalLoss) {
		t.Errorf("history %d final %v", len(res.History), res.FinalLoss)
	}
	if _, err := New(SummitScale(8)...); err == nil {
		t.Error("SummitScale(8) is not a whole number of Summit nodes; want error")
	}
}

// TestObserverStreams checks that observers see every step and validation
// pass, in order, matching the final history.
func TestObserverStreams(t *testing.T) {
	var steps []StepStat
	var vals []ValStat
	exp, err := New(
		WithSyntheticData(16, 16, 8, 5),
		WithRanks(2, 1),
		WithSteps(6),
		WithValidation(2),
		WithValidationEvery(3),
		WithObserver(ObserverFuncs{
			Step:       func(s StepStat) { steps = append(steps, s) },
			Validation: func(v ValStat) { vals = append(vals, v) },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(res.History) {
		t.Fatalf("observer saw %d steps, history has %d", len(steps), len(res.History))
	}
	for i := range steps {
		if steps[i] != res.History[i] {
			t.Fatalf("step %d: observer %+v != history %+v", i, steps[i], res.History[i])
		}
	}
	if len(vals) != len(res.ValHistory) || len(vals) != 2 {
		t.Fatalf("observer saw %d validations, history has %d, want 2", len(vals), len(res.ValHistory))
	}
}

// TestContextCancellation cancels mid-run and expects a prompt, clean exit
// with the partial history.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 3
	exp, err := New(
		WithSyntheticData(16, 16, 8, 5),
		WithRanks(4, 2), // multiple ranks: cancellation must not deadlock collectives
		WithSteps(10_000),
		WithObserver(ObserverFuncs{Step: func(s StepStat) {
			if s.Step == stopAfter {
				cancel()
			}
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if len(res.History) <= stopAfter || len(res.History) > stopAfter+3 {
		t.Errorf("partial history has %d steps, want just past %d", len(res.History), stopAfter)
	}
	if res.FinalLoss == 0 || math.IsNaN(res.FinalLoss) {
		t.Errorf("partial FinalLoss = %v", res.FinalLoss)
	}
}

// TestCheckpointRoundtrip trains, checkpoints, restores into a replica
// built with a different weight seed, and expects identical predictions.
func TestCheckpointRoundtrip(t *testing.T) {
	exp, err := New(append(Quickstart(), WithSteps(10), WithValidation(0))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := res.Model.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	restored, err := BuildModel("tiramisu", Tiny, ModelConfig{Height: 24, Width: 32, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	sample := exp.Dataset().Sample(0)
	a, err := res.Model.Segment(sample.Fields, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Segment(sample.Fields, SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Data() {
		if b.Data()[i] != v {
			t.Fatalf("restored model diverged at pixel %d", i)
		}
	}

	// Resume training from the checkpoint through the option.
	resumed, err := New(append(Quickstart(),
		WithSteps(5), WithValidation(0), WithInitCheckpoint(path), WithSeed(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSymbolicAnalysis builds the paper-exact network symbolically and
// checks the analysis is at paper scale.
func TestSymbolicAnalysis(t *testing.T) {
	m, err := BuildModel("deeplab", Paper, ModelConfig{
		BatchSize: 2, InChannels: 16, Height: 768, Width: 1152, Symbolic: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := m.Analyze(FP16)
	if tf := a.FLOPsPerSample() / 1e12; tf < 5 || tf > 40 {
		t.Errorf("DeepLabv3+ FLOPs/sample = %.2f TF, want paper-scale (~14)", tf)
	}
	if m.NumParams() < 1e6 {
		t.Errorf("paper DeepLab has %d params, want millions", m.NumParams())
	}
	if _, err := New(WithModelConfig(ModelConfig{Symbolic: true})); err == nil {
		t.Error("training a symbolic model should fail at New")
	}
}

// TestWorkspaceOptions covers the workspace-policy and kernel-worker
// options plus the allocation/reuse counters on Result and StepStat.
func TestWorkspaceOptions(t *testing.T) {
	if _, err := New(WithKernelWorkers(0)); err == nil {
		t.Fatal("WithKernelWorkers(0) must be rejected")
	}

	exp, err := New(
		WithSyntheticData(16, 16, 8, 3),
		WithSteps(3),
		WithWorkspacePolicy(WorkspaceFresh),
		WithKernelWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if exp.cfg.Workspace != core.WorkspaceFresh || exp.cfg.KernelWorkers != 2 {
		t.Fatalf("workspace/kernel workers: %v/%d", exp.cfg.Workspace, exp.cfg.KernelWorkers)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Memory.Requests != 0 || res.Memory.Reuses != 0 {
		t.Fatalf("fresh policy must report zero pool traffic, got %+v", res.Memory)
	}

	// Default (pooled) policy: counters must move, and steady state must
	// show reuse on the step records.
	var last StepStat
	exp2, err := New(
		WithSyntheticData(16, 16, 8, 3),
		WithSteps(4),
		WithObserver(ObserverFuncs{Step: func(s StepStat) { last = s }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := exp2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Memory.Requests == 0 || res2.Memory.Reuses == 0 {
		t.Fatalf("pooled policy must report pool traffic, got %+v", res2.Memory)
	}
	if res2.Memory.Allocs+res2.Memory.Reuses != res2.Memory.Requests {
		t.Fatalf("counters inconsistent: %+v", res2.Memory)
	}
	if last.PoolReuses == 0 {
		t.Fatalf("final StepStat carries no reuse counter: %+v", last)
	}
	if last.PoolAllocs >= last.PoolReuses {
		t.Fatalf("steady state should reuse more than it allocates: %+v", last)
	}
}

// TestKernelISAOption covers ISA pinning: invalid names are rejected at
// New, "scalar" runs force the reference kernels, and the prior ISA is
// restored after the run.
func TestKernelISAOption(t *testing.T) {
	if _, err := New(WithKernelISA("sse9")); err == nil {
		t.Fatal("WithKernelISA(\"sse9\") must be rejected")
	}

	before := tensor.ActiveISA()
	exp, err := New(
		WithSyntheticData(16, 16, 8, 3),
		WithSteps(2),
		WithKernelISA("scalar"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if exp.cfg.KernelISA != "scalar" {
		t.Fatalf("cfg.KernelISA = %q, want scalar", exp.cfg.KernelISA)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := tensor.ActiveISA(); after != before {
		t.Fatalf("ISA not restored after run: before %v, after %v", before, after)
	}
}
