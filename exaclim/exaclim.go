// Package exaclim is the public face of the repro library: one functional-
// options API over the internal training stack that reproduces "Exascale
// Deep Learning for Climate Analytics" (Kurth et al., SC18).
//
// An experiment is assembled from options, then run under a context:
//
//	exp, err := exaclim.New(
//	    exaclim.WithNetwork("tiramisu", exaclim.Tiny),
//	    exaclim.WithRanks(8, 2),
//	    exaclim.WithPrecision(exaclim.FP16),
//	    exaclim.WithHybridAllReduce(),
//	)
//	res, err := exp.Run(ctx)
//
// Networks, optimizers, and loss weightings are looked up by name in
// registries (Networks, Optimizers, Weightings list the keys), so CLI
// flags map directly onto the API. Progress can be streamed with
// WithObserver, runs cancel cleanly through the context, and the trained
// model comes back on Result.Model for checkpointing (SaveCheckpoint) and
// tiled inference (Segment). Presets Quickstart and SummitScale mirror the
// paper's Tiramisu and DeepLabv3+ configurations.
//
// Long runs are preemptible: WithCheckpointEvery/WithCheckpointDir write
// full training-state snapshots (weights, optimizer moments, FP16 loss
// scaler, data cursors, step counter) asynchronously off the hot path,
// and WithResume continues an interrupted run bit-exactly. See
// Example_trainCheckpointResume and the README operations runbook.
package exaclim

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/horovod"
	"repro/internal/infer"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Experiment is a fully-resolved training configuration, ready to Run.
type Experiment struct {
	cfg       core.Config
	observers []Observer
	network   string
	size      Size
	model     ModelConfig
}

// New resolves the options into an Experiment. All registry lookups and
// consistency checks happen here, so a returned Experiment always runs.
func New(opts ...Option) (*Experiment, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if o.err != nil {
		return nil, o.err
	}

	build, err := networks.lookup(o.network)
	if err != nil {
		return nil, err
	}
	optimizer, err := optimizers.lookup(o.optimizer)
	if err != nil {
		return nil, err
	}
	weighting, err := weightings.lookup(o.weighting)
	if err != nil {
		return nil, err
	}

	if o.ranks < 1 || o.perNode < 1 || o.ranks%o.perNode != 0 {
		return nil, fmt.Errorf("exaclim: ranks (%d) must be a positive multiple of gpus-per-node (%d)",
			o.ranks, o.perNode)
	}
	if o.steps < 1 {
		return nil, fmt.Errorf("exaclim: steps must be positive, got %d", o.steps)
	}
	if o.valEvery > 0 && o.valSize == 0 {
		return nil, fmt.Errorf("exaclim: WithValidationEvery requires WithValidation")
	}
	if o.schedule != nil && o.polyDecay {
		return nil, fmt.Errorf("exaclim: WithLRSchedule and WithPolynomialDecay are mutually exclusive")
	}
	if o.ckptEvery > 0 && o.ckptDir == "" {
		return nil, fmt.Errorf("exaclim: WithCheckpointEvery requires WithCheckpointDir")
	}
	if o.ckptDir != "" && o.ckptEvery == 0 {
		return nil, fmt.Errorf("exaclim: WithCheckpointDir requires WithCheckpointEvery")
	}
	if o.resume != "" && o.initCkpt != "" {
		return nil, fmt.Errorf("exaclim: WithResume (full state) and WithInitCheckpoint (weights only) are mutually exclusive")
	}

	// Elastic training: node failures and EASGD churn need the trajectory
	// defined over a global batch so the surviving world can continue it;
	// default to one column per rank when the caller didn't size it.
	if (len(o.failures) > 0 || o.churn.Mode == ChurnEASGD) && o.globalBatch == 0 {
		o.globalBatch = o.ranks
	}
	if o.globalBatch > 0 {
		if o.hybrid {
			return nil, fmt.Errorf("exaclim: elastic training (WithGlobalBatch/WithNodeFailure/WithChurnPolicy) is incompatible with WithHybridAllReduce — gradients combine over the canonical world-size-invariant tree")
		}
		if o.wire != WireFP32 {
			return nil, fmt.Errorf("exaclim: elastic training requires the FP32 wire format")
		}
	}

	// Dataset: explicit > synthetic spec > a default synthetic set sized to
	// the model input (24×32 when that too is unset).
	dataset := o.dataset
	if dataset == nil {
		spec := o.synth
		if spec == nil {
			h, w := o.model.Height, o.model.Width
			if h == 0 || w == 0 {
				h, w = 24, 32
			}
			spec = &synthSpec{height: h, width: w, samples: 32, seed: 42}
		}
		dataset = SyntheticDataset(spec.height, spec.width, spec.samples, spec.seed)
	}

	model := o.model
	if len(o.channels) > 0 && model.InChannels == 0 {
		model.InChannels = len(o.channels)
	}
	model = model.withDefaults(dataset.Cfg.Height, dataset.Cfg.Width)
	if model.Seed == 0 {
		model.Seed = o.seed + 1
	}
	if model.Symbolic {
		return nil, fmt.Errorf("exaclim: symbolic models cannot train; use BuildModel for analysis")
	}

	fabric := o.fabric
	nodes := o.ranks / o.perNode
	switch {
	case fabric != nil:
		if fabric.Size() != o.ranks {
			return nil, fmt.Errorf("exaclim: fabric size %d != ranks %d", fabric.Size(), o.ranks)
		}
	case o.summit:
		if o.perNode != 6 {
			return nil, fmt.Errorf("exaclim: Summit packs 6 GPUs per node, got WithRanks(%d, %d)",
				o.ranks, o.perNode)
		}
		fabric = simnet.Summit(nodes)
	case o.perNode > 1:
		fabric = simnet.NewTwoLevelFabric(nodes, o.perNode,
			simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
			simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9})
	case len(o.failures) > 0:
		// Loopback packs every rank onto one node, so a node failure there
		// would kill the whole world; churn experiments get one rank per
		// node (the same links a two-level WithRanks run would use).
		fabric = simnet.NewTwoLevelFabric(o.ranks, 1,
			simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
			simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9})
	default:
		fabric = simnet.Loopback(o.ranks)
	}
	if len(o.failures) > 0 {
		maxNode := (fabric.Size() - 1) / fabric.RanksPerNode()
		ff := simnet.NewFaultFabric(fabric)
		for _, f := range o.failures {
			if f.node > maxNode {
				return nil, fmt.Errorf("exaclim: WithNodeFailure(%d, %d) on a run with nodes 0..%d", f.node, f.atStep, maxNode)
			}
			ff.FailNode(f.node, f.atStep)
		}
		fabric = ff
	}

	hvd := horovod.Tree(o.radix)
	if o.flatCtl {
		hvd = horovod.Flat(o.ranks)
	}

	schedule := o.schedule
	if o.polyDecay {
		schedule = opt.PolynomialDecay(o.lr, o.polyEnd, o.steps, o.polyPower)
	}
	if o.warmup > 0 {
		base := schedule
		if base == nil {
			lr := o.lr
			base = func(int) float64 { return lr }
		}
		schedule = opt.LinearWarmup(base, o.warmup)
	}

	buildNet := func() (*models.Network, error) {
		net, err := build(o.size, modelsConfig(model))
		if err != nil {
			return nil, err
		}
		if o.initCkpt != "" {
			if err := models.LoadParamsFile(o.initCkpt, net.Graph); err != nil {
				return nil, err
			}
		}
		return net, nil
	}

	exchange := core.ExchangeOverlap
	if o.noOverlap {
		exchange = core.ExchangeSerial
	}

	return &Experiment{
		cfg: core.Config{
			BuildNet:           buildNet,
			Precision:          o.precision,
			LossScale:          o.lossScale,
			Optimizer:          optimizer,
			LR:                 o.lr,
			UseLARC:            o.larc,
			LARCTrust:          o.larcTrust,
			GradientLag:        o.lag,
			LRSchedule:         schedule,
			Weighting:          weighting,
			Dataset:            dataset,
			Channels:           o.channels,
			Ranks:              o.ranks,
			Fabric:             fabric,
			Horovod:            hvd,
			HybridReduce:       o.hybrid,
			Exchange:           exchange,
			FusionBufferBytes:  o.fusionBytes,
			Wire:               o.wire,
			Steps:              o.steps,
			Seed:               o.seed,
			ValidationSize:     o.valSize,
			ValidateEvery:      o.valEvery,
			StepComputeSeconds: o.stepSeconds,
			Workspace:          o.workspace,
			KernelWorkers:      o.kernelWorkers,
			KernelISA:          o.kernelISA,
			CheckpointEvery:    o.ckptEvery,
			CheckpointDir:      o.ckptDir,
			CheckpointRetain:   o.ckptRetain,
			CheckpointSync:     o.ckptSync,
			ResumeFrom:         o.resume,
			ElasticResume:      o.elasticResume,
			GlobalBatch:        o.globalBatch,
			SnapshotCompact:    o.compactSnaps,
			Churn:              o.churn,
		},
		observers: o.observers,
		network:   o.network,
		size:      o.size,
		model:     model,
	}, nil
}

// Dataset returns the dataset the experiment trains on.
func (e *Experiment) Dataset() *climate.Dataset { return e.cfg.Dataset }

// ControlPlaneStats is rank 0's Horovod control-plane traffic.
type ControlPlaneStats struct {
	CtlSent     int // control messages sent
	CtlReceived int // control messages received
	Batches     int // all-reduce batches (fusion buckets) executed
	// WireBytes is the gradient payload presented to the cross-node
	// reduction at the wire width (each element once per step, not per
	// hop). The hybrid reducer's intra-node NVLink phases always run FP32
	// and are not counted here.
	WireBytes int64
}

// MemoryStats is rank 0's workspace-pool traffic for the run: how much of
// the execution's buffer demand was served by reuse instead of allocation.
// Under WorkspaceFresh all fields are zero.
type MemoryStats struct {
	Requests   uint64 // buffer requests served by the workspace pool
	Allocs     uint64 // requests that had to allocate fresh memory
	Reuses     uint64 // requests served from recycled buffers
	BytesAlloc uint64 // bytes newly allocated over the whole run
}

// Result summarizes a finished (or cancelled) run.
type Result struct {
	History      []StepStat
	ValHistory   []ValStat // populated by WithValidationEvery
	FinalLoss    float64
	IoU          []float64 // per class (index with ClassBackground, ClassTC, ClassAR)
	MeanIoU      float64
	Accuracy     float64
	Makespan     float64 // virtual seconds for the whole run
	SkippedSteps int     // FP16 overflow skips
	ControlPlane ControlPlaneStats
	Memory       MemoryStats // workspace allocation/reuse counters
	// OverlapFraction is the mean fraction of gradient-exchange buckets
	// reduced before each backward pass finished (0 when WithCommOverlap
	// is disabled).
	OverlapFraction float64
	// WireBytes is rank 0's cumulative gradient payload presented to the
	// cross-node reduction at the wire width (see ControlPlaneStats) —
	// WithWireFormat(WireFP16) halves it.
	WireBytes int64
	// Model is the trained model (rank 0's replica; all replicas are
	// identical after a synchronous run).
	Model *Model
	// StartStep is the first step this process trained: 0 normally, the
	// snapshot's step under WithResume. History covers [StartStep, steps).
	StartStep int
	// Checkpoints counts full-state snapshots committed by this run, and
	// LastCheckpoint is the newest committed path (empty when none).
	Checkpoints    int
	LastCheckpoint string
	// RestoredHistory and RestoredValHistory are the convergence curves
	// carried over from the resumed snapshot, covering [0, StartStep) —
	// prepend them to History/ValHistory to plot the full trajectory across
	// restarts. Restored entries keep only Step/Loss/Skipped (and the
	// validation metrics); per-process fields such as VirtualTime read zero.
	// Empty on fresh runs.
	RestoredHistory    []StepStat
	RestoredValHistory []ValStat
}

// Run executes the experiment. Cancelling the context stops training at
// the next step boundary on every rank and returns the partial Result
// together with the context's error; any other error returns a nil Result.
func (e *Experiment) Run(ctx context.Context) (*Result, error) {
	cfg := e.cfg
	cfg.Ctx = ctx
	if n := len(e.observers); n > 0 {
		obs := e.observers
		cfg.OnStep = func(s core.StepStat) {
			for _, ob := range obs {
				ob.OnStep(StepStat(s))
			}
		}
		cfg.OnValidation = func(v core.ValStat) {
			for _, ob := range obs {
				ob.OnValidation(ValStat(v))
			}
		}
	}
	var res *core.Result
	var err error
	if cfg.GlobalBatch > 0 {
		// Elastic runs go through the churn-surviving driver: on a node
		// failure it restarts from the last snapshot on the survivors and
		// stitches the attempts into one continuous Result.
		res, err = core.TrainElastic(cfg)
	} else {
		res, err = core.Train(cfg)
	}
	if res == nil {
		return nil, err
	}
	out := &Result{
		History:         make([]StepStat, len(res.History)),
		ValHistory:      make([]ValStat, len(res.ValHistory)),
		FinalLoss:       res.FinalLoss,
		IoU:             res.IoU,
		MeanIoU:         res.MeanIoU,
		Accuracy:        res.Accuracy,
		Makespan:        res.Makespan,
		SkippedSteps:    res.SkippedSteps,
		ControlPlane:    ControlPlaneStats(res.CtlStats),
		OverlapFraction: res.OverlapFrac,
		WireBytes:       res.CtlStats.WireBytes,
		StartStep:       res.StartStep,
		Checkpoints:     res.CheckpointsWritten,
		LastCheckpoint:  res.LastCheckpoint,
		Memory: MemoryStats{
			Requests:   res.PoolStats.Gets,
			Allocs:     res.PoolStats.Misses,
			Reuses:     res.PoolStats.Reuses(),
			BytesAlloc: res.PoolStats.Bytes,
		},
	}
	for i, h := range res.History {
		out.History[i] = StepStat(h)
	}
	for i, v := range res.ValHistory {
		out.ValHistory[i] = ValStat(v)
	}
	if len(res.RestoredHistory) > 0 {
		out.RestoredHistory = make([]StepStat, len(res.RestoredHistory))
		for i, h := range res.RestoredHistory {
			out.RestoredHistory[i] = StepStat(h)
		}
	}
	if len(res.RestoredValHistory) > 0 {
		out.RestoredValHistory = make([]ValStat, len(res.RestoredValHistory))
		for i, v := range res.RestoredValHistory {
			out.RestoredValHistory[i] = ValStat(v)
		}
	}
	if res.Net != nil {
		out.Model = &Model{name: e.network, net: res.Net, rebuild: rebuilder(e.network, e.size, e.model)}
	}
	return out, err
}

// SmoothedLoss returns a moving average over the loss history with the
// given window (the paper's Fig 6 uses 10).
func (r *Result) SmoothedLoss(window int) []float64 {
	hist := make([]core.StepStat, len(r.History))
	for i, h := range r.History {
		hist[i] = core.StepStat(h)
	}
	return core.SmoothedLoss(hist, window)
}

// LossImproved reports whether the smoothed loss fell by at least frac
// over the run — a convergence check robust to step noise.
func (r *Result) LossImproved(frac float64) bool {
	hist := make([]core.StepStat, len(r.History))
	for i, h := range r.History {
		hist[i] = core.StepStat(h)
	}
	return core.LossImproved(hist, frac)
}

// SyntheticDataset generates a deterministic synthetic CAM5-style climate
// dataset: height×width grids of the 16 atmospheric channels with
// heuristically-labeled tropical cyclones and atmospheric rivers.
func SyntheticDataset(height, width, samples int, seed int64) *climate.Dataset {
	return climate.NewDataset(climate.DefaultGenConfig(height, width, seed), samples)
}

// Model wraps a built network with its post-training utilities. The
// inference adapter and the tiled-segmentation engine behind Segment are
// built on first use and cached on the model, so repeated Segment calls
// reuse executors, plans, and pooled buffers instead of rebuilding them per
// call. A Model's Segment is safe for one goroutine at a time; for
// concurrent serving build a Server (NewServer).
type Model struct {
	name string
	net  *models.Network
	// rebuild constructs a fresh instance of the same architecture — fresh
	// parameter tensors, identical labels and shapes. The serving fleet's
	// hot-swap path hosts each incoming weight generation on its own
	// instance so in-flight inference on the old tensors is never touched.
	rebuild func() (*models.Network, error)

	mu        sync.Mutex
	adapted   *infer.Network
	runner    *infer.Runner
	runnerCfg infer.Config
}

// rebuilder returns a factory producing fresh instances of a registered
// network at a resolved size/config.
func rebuilder(network string, size Size, cfg ModelConfig) func() (*models.Network, error) {
	return func() (*models.Network, error) {
		build, err := networks.lookup(network)
		if err != nil {
			return nil, err
		}
		return build(size, modelsConfig(cfg))
	}
}

// BuildModel constructs a registered network standalone — for inference
// from a checkpoint, or (with cfg.Symbolic) for paper-scale analysis.
func BuildModel(network string, size Size, cfg ModelConfig) (*Model, error) {
	build, err := networks.lookup(network)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(24, 32)
	net, err := build(size, modelsConfig(cfg))
	if err != nil {
		return nil, err
	}
	return &Model{name: network, net: net, rebuild: rebuilder(network, size, cfg)}, nil
}

func modelsConfig(c ModelConfig) models.Config {
	return models.Config{
		BatchSize:  c.BatchSize,
		InChannels: c.InChannels,
		NumClasses: c.NumClasses,
		Height:     c.Height,
		Width:      c.Width,
		Symbolic:   c.Symbolic,
		Seed:       c.Seed,
	}
}

// Name returns the registry name the model was built from.
func (m *Model) Name() string { return m.name }

// NumParams returns the number of trainable scalars.
func (m *Model) NumParams() int { return m.net.Graph.NumParamElements() }

// InputSize returns the network's input grid (height, width).
func (m *Model) InputSize() (h, w int) {
	return m.net.Images.Shape[2], m.net.Images.Shape[3]
}

// SaveCheckpoint writes the model's parameters to path in the label+shape-
// matched checkpoint format.
func (m *Model) SaveCheckpoint(path string) error {
	return models.SaveParamsFile(path, m.net.Graph)
}

// LoadCheckpoint restores parameters saved by SaveCheckpoint into this
// model; labels and shapes must match. Any cached inference engine is
// dropped, so later Segment calls see the restored weights even if the
// load replaced parameter tensors. Do not call while a Server built from
// this model is running.
func (m *Model) LoadCheckpoint(path string) error {
	m.mu.Lock()
	m.invalidateLocked()
	m.mu.Unlock()
	return models.LoadParamsFile(path, m.net.Graph)
}

// invalidateLocked drops the cached adapter and engine (caller holds mu).
func (m *Model) invalidateLocked() {
	if m.runner != nil {
		m.runner.Close()
		m.runner = nil
	}
	m.adapted = nil
}

// adapter returns the cached inference adapter, building it on first use.
func (m *Model) adapter() *infer.Network {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.adapted == nil {
		m.adapted = infer.FromModel(m.net)
	}
	return m.adapted
}

// Analyze walks the graph and returns per-kernel-category counts for one
// full training step (forward, backward, optimizer, all-reduce, and type
// conversion) at the given precision — the unit of the paper's Figs 2/3/8/9
// tables and the scaling model's input.
func (m *Model) Analyze(p Precision) *graph.Analysis {
	return graph.Analyze(m.net.Graph, graph.AnalyzeOptions{
		Precision: p, IncludeOptimizer: true,
		IncludeAllreduce: true, IncludeTypeConversion: true,
	})
}

// PaperAnalysis builds a registered network symbolically at the paper's
// 1152×768 scale and returns its full training-step analysis — the shared
// input of the Fig 2/3/8/9 tables and the weak-scaling model.
func PaperAnalysis(network string, p Precision, batch, channels int) (*graph.Analysis, error) {
	m, err := BuildModel(network, Paper, ModelConfig{
		BatchSize: batch, InChannels: channels, NumClasses: 3,
		Height: 768, Width: 1152, Symbolic: true, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	return m.Analyze(p), nil
}

// SegmentConfig controls tiled inference. The zero value is valid and
// means: tile dimensions follow the model's input window, no overlap
// margin, FP32 execution, serial (batch-1) tile execution. Field by field:
//
//   - TileH, TileW — the window size tiles are cut to; both zero → the
//     model's input window (they must match the window the model was built
//     with, so overriding them is only useful for models accepting several
//     window sizes). Negative values are rejected.
//   - Overlap — margin (pixels) discarded on interior tile edges; must be
//     at least the network's receptive-field radius for the stitched
//     output to match a monolithic pass. Default 0; negative rejected.
//   - Precision — FP32 (default, bit-identical to training kernels), FP16
//     (half-precision round-trips), or INT8 (symmetric quantized conv/GEMM
//     kernels, inference-only).
//   - MaxBatch — tiles stacked into one executor run; masks are
//     bit-identical for every value. Default 0 → 1 (the serial reference
//     path); negative rejected. Servers set their own batching instead.
type SegmentConfig struct {
	TileH, TileW int
	// Overlap is the margin (pixels) discarded on interior tile edges; it
	// must be at least the network's receptive-field radius for the
	// stitched output to match a monolithic pass.
	Overlap   int
	Precision Precision
	// MaxBatch stacks up to this many tiles into one executor run.
	MaxBatch int
}

// inferConfig resolves defaults and validates a SegmentConfig against the
// model, with field-specific errors (the internal infer layer would reject
// the same values with less context).
func (m *Model) inferConfig(cfg SegmentConfig) (infer.Config, error) {
	if cfg.TileH < 0 || cfg.TileW < 0 {
		return infer.Config{}, fmt.Errorf("exaclim: SegmentConfig tile %dx%d must not be negative", cfg.TileH, cfg.TileW)
	}
	if cfg.Overlap < 0 {
		return infer.Config{}, fmt.Errorf("exaclim: SegmentConfig.Overlap must be ≥ 0, got %d", cfg.Overlap)
	}
	if cfg.MaxBatch < 0 {
		return infer.Config{}, fmt.Errorf("exaclim: SegmentConfig.MaxBatch must be ≥ 0, got %d", cfg.MaxBatch)
	}
	h, w := m.InputSize()
	if cfg.TileH == 0 && cfg.TileW == 0 {
		cfg.TileH, cfg.TileW = h, w
	}
	if cfg.TileH != h || cfg.TileW != w {
		return infer.Config{}, fmt.Errorf("exaclim: SegmentConfig tile %dx%d does not match the model window %dx%d",
			cfg.TileH, cfg.TileW, h, w)
	}
	if 2*cfg.Overlap >= cfg.TileH || 2*cfg.Overlap >= cfg.TileW {
		return infer.Config{}, fmt.Errorf("exaclim: SegmentConfig.Overlap %d leaves no interior in a %dx%d tile",
			cfg.Overlap, cfg.TileH, cfg.TileW)
	}
	return infer.Config{
		TileH: cfg.TileH, TileW: cfg.TileW,
		Overlap: cfg.Overlap, Precision: cfg.Precision,
		MaxBatch: cfg.MaxBatch,
	}, nil
}

// Segment runs the model over a [channels, H, W] field tensor of arbitrary
// size by tiling, returning the [H, W] predicted class mask. The first
// call builds the inference engine (a loss-free inference clone of the
// network with its own executors and buffer pool); later calls with the
// same config reuse it, so steady-state segmentation allocates almost
// nothing. It is the single-shot wrapper over the serving engine — for
// concurrent traffic use NewServer.
func (m *Model) Segment(fields *tensor.Tensor, cfg SegmentConfig) (*tensor.Tensor, error) {
	icfg, err := m.inferConfig(cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.runner == nil || m.runnerCfg != icfg {
		if m.adapted == nil {
			m.adapted = infer.FromModel(m.net)
		}
		if m.runner != nil {
			m.runner.Close()
		}
		r, err := infer.NewRunner(m.adapted, icfg)
		if err != nil {
			return nil, err
		}
		m.runner, m.runnerCfg = r, icfg
	}
	return m.runner.Segment(fields)
}
