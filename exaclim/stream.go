package exaclim

import (
	"context"

	"repro/internal/climate"
	"repro/internal/stream"
)

// StreamConfig parameterizes a StormWatcher run: the timestep source, the
// base frame rate and load profile (steady or diurnal burst), the bounded
// frame queue and its backpressure policy (block, drop-oldest, or degrade),
// tracker association settings, and event/visualization sinks.
type StreamConfig = stream.Config

// StreamStats is the cumulative accounting of a streaming run: frames
// produced/processed/dropped/degraded, tracker birth/death/merge counts,
// active-storm levels and peaks, end-to-end frame latency quantiles, and
// track-lifetime statistics.
type StreamStats = stream.Stats

// StreamResult is what a completed streaming run returns: final stats plus
// every storm track observed, longest first.
type StreamResult = stream.Result

// StormEvent is one online-tracker transition (birth, death, or merge)
// emitted while streaming.
type StormEvent = stream.Event

// StreamPolicy selects the frame-queue backpressure behavior.
type StreamPolicy = stream.Policy

// StreamProfile shapes the producer's frame rate over time.
type StreamProfile = stream.Profile

// The backpressure policies and load profiles, re-exported for callers
// configuring a StormWatcher.
const (
	// StreamBlock stalls the producer while the frame queue is full.
	StreamBlock = stream.PolicyBlock
	// StreamDropOldest sheds the stalest queued frame under pressure.
	StreamDropOldest = stream.PolicyDropOldest
	// StreamDegrade sheds compute while the queue is loaded: first by
	// boosting the server's early-exit threshold, then — deeper into
	// overload — by coarsening the tile stride.
	StreamDegrade = stream.PolicyDegrade
	// StreamSteady produces frames at a constant rate.
	StreamSteady = stream.ProfileSteady
	// StreamDiurnal modulates the rate with a half-sine burst cycle.
	StreamDiurnal = stream.ProfileDiurnal
)

// SyntheticSequence builds a temporally-coherent synthetic timestep source
// (storms persist, drift, and follow intensity life cycles across frames) —
// the streaming counterpart of SyntheticDataset.
func SyntheticSequence(height, width, frames int, seed int64) (*climate.Sequence, error) {
	return climate.NewSequence(climate.DefaultGenConfig(height, width, seed), frames)
}

// StormWatcher is continuous storm analytics over one trained model: a
// rate-controlled timestep source feeding the model's tiled-inference
// server through a bounded, backpressure-aware frame queue, with an online
// tracker linking detections into tracks as frames arrive. Create with
// NewStormWatcher, drive with Run, and Close to release the server.
type StormWatcher struct {
	server   *Server
	pipeline *stream.Pipeline
}

// NewStormWatcher builds a streaming pipeline over the model. ServerOptions
// size the underlying inference server (replicas, batching, tile queue);
// cfg shapes the stream itself. The model's weights are shared by reference
// with the server: do not train while the watcher is running.
func NewStormWatcher(m *Model, cfg StreamConfig, opts ...ServerOption) (*StormWatcher, error) {
	srv, err := NewServer(m, opts...)
	if err != nil {
		return nil, err
	}
	p, err := stream.New(srv.inner, cfg)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &StormWatcher{server: srv, pipeline: p}, nil
}

// Run streams until the configured MaxFrames is reached or ctx is
// cancelled, then drains gracefully: frames already admitted to the queue
// are segmented and tracked before Run returns. The server stays open for
// further runs; Close releases it.
func (w *StormWatcher) Run(ctx context.Context) (*StreamResult, error) {
	return w.pipeline.Run(ctx)
}

// QueueDepth returns the current and peak number of queued frames.
func (w *StormWatcher) QueueDepth() (cur, peak int) { return w.pipeline.QueueDepth() }

// ServerStats snapshots the underlying inference server's counters.
func (w *StormWatcher) ServerStats() ServerStats { return w.server.Stats() }

// Close drains and releases the underlying server. Safe to call more than
// once.
func (w *StormWatcher) Close() error { return w.server.Close() }
