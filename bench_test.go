// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus one per Section V innovation. Each benchmark both
// exercises the reproduction code path and reports the headline quantity
// as a custom metric (PF/s, efficiency, IoU, message counts...), so
// `go test -bench . -benchmem` regenerates the full results story.
//
// Absolute timings are whatever this host provides; the paper-comparable
// numbers are the reported custom metrics. See EXPERIMENTS.md for the
// paper-vs-measured table.
package repro

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/exaclim"
	"repro/internal/allreduce"
	"repro/internal/climate"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/easgd"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/h5lite"
	"repro/internal/horovod"
	"repro/internal/infer"
	"repro/internal/loss"
	"repro/internal/modelpar"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/simnet"
	"repro/internal/stagefs"
	"repro/internal/staging"
	"repro/internal/storms"
	"repro/internal/tensor"
)

// ---------- shared builders ----------

func paperAnalysis(b *testing.B, network string, p graph.Precision, batch, channels int) *graph.Analysis {
	b.Helper()
	cfg := models.Config{
		BatchSize: batch, InChannels: channels, NumClasses: 3,
		Height: 768, Width: 1152, Symbolic: true, Seed: 1,
	}
	var g *graph.Graph
	switch network {
	case "deeplab":
		net, err := models.BuildDeepLab(models.PaperDeepLab(cfg))
		if err != nil {
			b.Fatal(err)
		}
		g = net.Graph
	case "tiramisu":
		net, err := models.BuildTiramisu(models.PaperTiramisu(cfg))
		if err != nil {
			b.Fatal(err)
		}
		g = net.Graph
	case "tiramisu-orig":
		net, err := models.BuildTiramisu(models.OriginalTiramisu(cfg))
		if err != nil {
			b.Fatal(err)
		}
		g = net.Graph
	}
	return graph.Analyze(g, graph.AnalyzeOptions{
		Precision: p, IncludeOptimizer: true,
		IncludeAllreduce: true, IncludeTypeConversion: true,
	})
}

func summitScaling(b *testing.B, network string, p graph.Precision, lag int) perfmodel.ScalingConfig {
	b.Helper()
	batch := 1
	if p == graph.FP16 {
		batch = 2
	}
	grad := 44.3e6
	if network != "deeplab" {
		grad = 7.2e6
	}
	return perfmodel.ScalingConfig{
		Machine:   perfmodel.Summit(),
		Analysis:  paperAnalysis(b, network, p, batch, 16),
		Precision: p, GradBytes: grad * float64(p.Bytes()),
		NumTensors: 110, Lag: lag, HierarchicalCtl: true, Staged: true,
	}
}

func tinyTrainConfig(steps, ranks int) core.Config {
	return core.Config{
		BuildNet: func() (*models.Network, error) {
			return models.BuildTiramisu(models.TinyTiramisu(models.Config{
				BatchSize: 1, InChannels: climate.NumChannels, NumClasses: 3,
				Height: 16, Width: 16, Seed: 7,
			}))
		},
		Precision: graph.FP32,
		Optimizer: core.Adam,
		LR:        3e-3,
		Weighting: loss.InverseSqrtFrequency,
		Dataset:   climate.NewDataset(climate.DefaultGenConfig(16, 16, 42), 24),
		Ranks:     ranks,
		Steps:     steps,
		Seed:      5,
	}
}

// ---------- Fig 2: single-GPU performance table ----------

func BenchmarkFig2SingleGPU(b *testing.B) {
	type row struct {
		network  string
		gpu      perfmodel.GPU
		prec     graph.Precision
		batch    int
		channels int
	}
	rows := []row{
		{"deeplab", perfmodel.V100(), graph.FP16, 2, 16},
		{"deeplab", perfmodel.V100(), graph.FP32, 1, 16},
		{"tiramisu", perfmodel.V100(), graph.FP16, 2, 16},
		{"tiramisu", perfmodel.V100(), graph.FP32, 1, 16},
		{"tiramisu", perfmodel.P100(), graph.FP32, 1, 4},
	}
	for _, r := range rows {
		b.Run(r.network+"/"+r.gpu.Name+"/"+r.prec.String(), func(b *testing.B) {
			a := paperAnalysis(b, r.network, r.prec, r.batch, r.channels)
			var perf perfmodel.SingleGPU
			for i := 0; i < b.N; i++ {
				perf = perfmodel.SingleGPUPerf(r.network, a, r.gpu, r.prec)
			}
			b.ReportMetric(perf.TFPerSample, "TF/sample")
			b.ReportMetric(perf.SamplesPerS, "samples/s")
			b.ReportMetric(perf.PctPeak, "%peak")
		})
	}

	// Real single-"GPU" execution: one full training step (forward +
	// backward) on this host through the workspace-planned executor — the
	// measured counterpart of the analytic rows above. steps/s and allocs/op
	// are the quantities the pooled-memory refactor moves.
	b.Run("real-step/tiramisu-tiny", func(b *testing.B) {
		benchRealStep(b, func() (*models.Network, error) {
			return models.BuildTiramisu(models.TinyTiramisu(models.Config{
				BatchSize: 1, InChannels: 16, NumClasses: 3,
				Height: 32, Width: 32, Seed: 3,
			}))
		}, 32)
	})
	b.Run("real-step/deeplab-tiny", func(b *testing.B) {
		benchRealStep(b, func() (*models.Network, error) {
			return models.BuildDeepLab(models.TinyDeepLab(models.Config{
				BatchSize: 1, InChannels: 16, NumClasses: 3,
				Height: 32, Width: 32, Seed: 3,
			}))
		}, 32)
	})
}

// benchRealStep measures real forward+backward step throughput through a
// persistent pooled executor (the trainer's per-rank configuration).
func benchRealStep(b *testing.B, build func() (*models.Network, error), hw int) {
	b.Helper()
	net, err := build()
	if err != nil {
		b.Fatal(err)
	}
	ds := climate.NewDataset(climate.DefaultGenConfig(hw, hw, 9), 2)
	sample := ds.Sample(0)
	weights := loss.ClassWeights([]float64{0.97, 0.01, 0.02}, loss.InverseSqrtFrequency)
	labels := sample.Labels.Reshape(tensor.Shape{1, hw, hw})
	feeds := map[*graph.Node]*tensor.Tensor{
		net.Images:  sample.Fields.Reshape(tensor.NCHW(1, 16, hw, hw)),
		net.Labels:  labels,
		net.Weights: loss.WeightMap(labels, weights),
	}
	ex := graph.NewPooledExecutor(net.Graph, graph.FP32, 1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Reseed(int64(i))
		if err := ex.Forward(feeds); err != nil {
			b.Fatal(err)
		}
		if err := ex.Backward(net.Loss); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// ---------- Fig 3 / Fig 8 / Fig 9: kernel-category profiles ----------

func benchKernelTable(b *testing.B, network string) {
	for _, p := range []graph.Precision{graph.FP32, graph.FP16} {
		b.Run(p.String(), func(b *testing.B) {
			batch := 1
			if p == graph.FP16 {
				batch = 2
			}
			a := paperAnalysis(b, network, p, batch, 16)
			var rows []perfmodel.CategoryRow
			for i := 0; i < b.N; i++ {
				rows = perfmodel.KernelTable(a, perfmodel.V100(), p)
			}
			var convPct float64
			for _, r := range rows {
				if r.Category == graph.CatForwardConv || r.Category == graph.CatBackwardConv {
					convPct += r.PctTime
				}
			}
			b.ReportMetric(convPct, "%time-in-conv")
			b.ReportMetric(perfmodel.StepSeconds(a, perfmodel.V100(), p)*1e3, "step-ms")
		})
	}
}

func BenchmarkFig3KernelBreakdown(b *testing.B) {
	b.Run("tiramisu", func(b *testing.B) { benchKernelTable(b, "tiramisu") })
	b.Run("deeplab", func(b *testing.B) { benchKernelTable(b, "deeplab") })
}

func BenchmarkFig8TiramisuDetail(b *testing.B) { benchKernelTable(b, "tiramisu") }

func BenchmarkFig9DeeplabDetail(b *testing.B) { benchKernelTable(b, "deeplab") }

// ---------- Fig 4: weak scaling ----------

func BenchmarkFig4aTiramisuScaling(b *testing.B) {
	b.Run("summit-fp16-lag1-24576", func(b *testing.B) {
		s := summitScaling(b, "tiramisu", graph.FP16, 1)
		var p perfmodel.Point
		for i := 0; i < b.N; i++ {
			p = s.At(24576)
		}
		b.ReportMetric(p.PFps, "PF/s")
		b.ReportMetric(p.Efficiency*100, "%eff")
	})
	b.Run("pizdaint-fp32-5300", func(b *testing.B) {
		a := paperAnalysis(b, "tiramisu", graph.FP32, 1, 4)
		s := perfmodel.ScalingConfig{
			Machine: perfmodel.PizDaint(), Analysis: a, Precision: graph.FP32,
			GradBytes: 7.2e6 * 4, NumTensors: 110, Lag: 1,
			HierarchicalCtl: true, Staged: true,
		}
		var p perfmodel.Point
		for i := 0; i < b.N; i++ {
			p = s.At(5300)
		}
		b.ReportMetric(p.PFps, "PF/s")           // paper: 21.0
		b.ReportMetric(p.Efficiency*100, "%eff") // paper: 79.0
	})
}

func BenchmarkFig4bDeeplabScaling(b *testing.B) {
	for _, tc := range []struct {
		name string
		prec graph.Precision
		lag  int
	}{
		{"fp16-lag1", graph.FP16, 1},
		{"fp16-lag0", graph.FP16, 0},
		{"fp32-lag1", graph.FP32, 1},
	} {
		b.Run(tc.name+"-27360", func(b *testing.B) {
			s := summitScaling(b, "deeplab", tc.prec, tc.lag)
			var p perfmodel.Point
			for i := 0; i < b.N; i++ {
				p = s.At(27360)
			}
			b.ReportMetric(p.PFps, "PF/s")               // paper fp16 lag1: 999
			b.ReportMetric(p.PeakPFps/1000, "EF/s-peak") // paper: 1.13
			b.ReportMetric(p.Efficiency*100, "%eff")     // paper: 90.7
		})
	}
}

// ---------- Fig 5: input location on Piz Daint ----------

func BenchmarkFig5DataStaging(b *testing.B) {
	build := func(staged bool) perfmodel.ScalingConfig {
		a := paperAnalysis(b, "tiramisu", graph.FP32, 1, 4)
		return perfmodel.ScalingConfig{
			Machine: perfmodel.PizDaint(), Analysis: a, Precision: graph.FP32,
			GradBytes: 7.2e6 * 4, NumTensors: 110, Lag: 1,
			HierarchicalCtl: true, Staged: staged,
			FS: stagefs.PizDaintLustre(), SampleBytes: 16 * 768 * 1152 * 4,
		}
	}
	staged, global := build(true), build(false)
	var ps, pg perfmodel.Point
	for i := 0; i < b.N; i++ {
		ps = staged.At(2048)
		pg = global.At(2048)
	}
	b.ReportMetric(ps.Efficiency*100, "%eff-local")                 // paper: 83.4
	b.ReportMetric(pg.Efficiency*100, "%eff-global")                // paper: 75.8
	b.ReportMetric((1-pg.Efficiency/ps.Efficiency)*100, "%penalty") // paper: 9.5
}

// ---------- Fig 6: convergence at scale ----------

func BenchmarkFig6Convergence(b *testing.B) {
	for _, tc := range []struct {
		name string
		prec graph.Precision
		lag  int
	}{
		{"fp32-lag0", graph.FP32, 0},
		{"fp16-lag0", graph.FP16, 0},
		{"fp16-lag1", graph.FP16, 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var final, first float64
			for i := 0; i < b.N; i++ {
				cfg := tinyTrainConfig(14, 4)
				cfg.Precision = tc.prec
				cfg.GradientLag = tc.lag
				if tc.lag == 1 {
					cfg.LR = 1e-3
				}
				cfg.StepComputeSeconds = 0.5
				res, err := core.Train(cfg)
				if err != nil {
					b.Fatal(err)
				}
				first, final = res.History[0].Loss, res.FinalLoss
			}
			b.ReportMetric(first, "loss-initial")
			b.ReportMetric(final, "loss-final")
		})
	}
}

// ---------- Fig 7: segmentation accuracy ----------

func BenchmarkFig7SegmentationIoU(b *testing.B) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		cfg := tinyTrainConfig(30, 2)
		cfg.ValidationSize = 3
		var err error
		res, err = core.Train(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IoU[climate.ClassBackground]*100, "%IoU-BG")
	b.ReportMetric(res.Accuracy*100, "%accuracy")
}

// ---------- §V-A1: staging ----------

func BenchmarkStagingThreads(b *testing.B) {
	fs := stagefs.SummitGPFS()
	var one, eight float64
	for i := 0; i < b.N; i++ {
		one = fs.NodeReadBW(1)
		eight = fs.NodeReadBW(8)
	}
	b.ReportMetric(one/1e9, "GB/s-1thread")    // paper: 1.79
	b.ReportMetric(eight/1e9, "GB/s-8threads") // paper: 11.98
}

func BenchmarkStagingScale(b *testing.B) {
	nvme := stagefs.SummitNVMe()
	m := staging.AnalyticModel{
		Cfg: staging.Config{
			DatasetSamples: 63000, SamplesPerNode: 1500,
			SampleBytes: 56 << 20, ReadThreads: 8, FS: stagefs.SummitGPFS(),
		},
		InterconnectBW: 12.5e9,
		Local:          &nvme,
	}
	var naive, disjoint float64
	for i := 0; i < b.N; i++ {
		naive = m.NaiveSeconds(1024)
		disjoint = m.DisjointSeconds(1024)
	}
	b.ReportMetric(naive/60, "min-naive-1024")       // paper: 10–20
	b.ReportMetric(disjoint/60, "min-disjoint-1024") // paper: <3
}

// BenchmarkPipelineReaders reproduces §V-A2: four reader threads sharing a
// serializing HDF5-style library versus four "process-mode" readers with
// independent instances, measured as pipeline throughput end to end.
func BenchmarkPipelineReaders(b *testing.B) {
	const n, decode = 16, 1 * time.Millisecond
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.h5l")
	ds := climate.NewDataset(climate.DefaultGenConfig(16, 24, 9), n)
	lib := h5lite.NewLibrary(0)
	w, err := lib.Create(path, h5lite.Meta{Channels: climate.NumChannels, Height: 16, Width: 24})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s := ds.Sample(i)
		if err := w.Append(s.Fields.Data(), s.Labels.Data()); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}

	run := func(mode pipeline.ReaderMode) time.Duration {
		fs, err := pipeline.NewFileSource(path, mode, decode)
		if err != nil {
			b.Fatal(err)
		}
		defer fs.Close()
		p, err := pipeline.New(fs, pipeline.Config{
			BatchSize: 2, Readers: 4, PrefetchDepth: 2, Seed: 4, Epochs: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Stop()
		start := time.Now()
		for p.Next() != nil {
		}
		return time.Since(start)
	}
	var threadT, procT time.Duration
	for i := 0; i < b.N; i++ {
		threadT = run(pipeline.ThreadMode)
		procT = run(pipeline.ProcessMode)
	}
	b.ReportMetric(float64(threadT)/float64(procT), "process-speedup")
}

func BenchmarkStagingFunctional(b *testing.B) {
	// Real staging over 4 goroutine nodes: verifies the code path under
	// the benchmark harness and reports virtual makespans.
	cfg := staging.Config{
		DatasetSamples: 64, SamplesPerNode: 24, SampleBytes: 256,
		ReadThreads: 8, FS: stagefs.SummitGPFS(), Seed: 11,
	}
	fabric := simnet.NewTwoLevelFabric(4, 1,
		simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
		simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9})
	var amp float64
	for i := 0; i < b.N; i++ {
		w := mpi.NewWorld(fabric)
		res, _ := staging.Run(w, cfg, staging.Naive)
		amp = res.ReadAmplification
		w = mpi.NewWorld(fabric)
		staging.Run(w, cfg, staging.Disjoint)
	}
	b.ReportMetric(amp, "naive-read-amplification")
}

// ---------- §V-A3: control plane and hybrid all-reduce ----------

func BenchmarkControlPlane(b *testing.B) {
	var flatRoot, treeRoot int
	for i := 0; i < b.N; i++ {
		flatRoot, _ = horovod.ControlLoad(27360, 27359, 110)
		treeRoot, _ = horovod.ControlLoad(27360, 4, 110)
	}
	b.ReportMetric(float64(flatRoot), "flat-msgs/step") // paper: millions
	b.ReportMetric(float64(treeRoot), "tree-msgs/step") // paper: thousands
}

func BenchmarkHybridAllreduce(b *testing.B) {
	// Functional hybrid vs flat ring on a 4-node Summit fabric, reporting
	// virtual-time speedup.
	fabric := simnet.Summit(4)
	const length = 1 << 14
	run := func(r allreduce.Reducer) float64 {
		w := mpi.NewWorld(fabric)
		return w.Run(func(c *mpi.Comm) {
			buf := make([]float32, length)
			r.Reduce(c, buf)
		})
	}
	var flat, hybrid float64
	for i := 0; i < b.N; i++ {
		flat = run(allreduce.Flat{Algorithm: mpi.Ring})
		hybrid = run(allreduce.NewHybrid(fabric))
	}
	b.ReportMetric(flat/hybrid, "hybrid-speedup")
}

// ---------- PR 3: overlapped multi-rank gradient exchange ----------

// multiRankStepConfig is the 8-rank real-step benchmark workload: real
// training steps of the tiny DeepLabv3+ (117K parameters in 104 gradient
// tensors — the highest comm-to-compute ratio of the tiny nets, the
// paper's strong-scaling regime) on a 4-node × 2-GPU fabric, with a
// representative per-step virtual GPU compute charge so the fabric-timed
// step cost has a paper-like comm share.
func multiRankStepConfig(steps, ranks int) core.Config {
	return core.Config{
		BuildNet: func() (*models.Network, error) {
			return models.BuildDeepLab(models.TinyDeepLab(models.Config{
				BatchSize: 1, InChannels: climate.NumChannels, NumClasses: 3,
				Height: 16, Width: 16, Seed: 7,
			}))
		},
		Precision: graph.FP32,
		Optimizer: core.Adam,
		LR:        3e-3,
		Weighting: loss.InverseSqrtFrequency,
		Dataset:   climate.NewDataset(climate.DefaultGenConfig(16, 16, 42), 24),
		Ranks:     ranks,
		Fabric: simnet.NewTwoLevelFabric(ranks/2, 2,
			simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
			simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9}),
		Steps:              steps,
		Seed:               5,
		StepComputeSeconds: 200e-6,
	}
}

// BenchmarkMultiRankStep measures multi-rank training steps (8 goroutine
// ranks, real payloads, real backward passes) across the exchange
// pipelines: the PR 2 baseline (count-fused synchronous Step, inline data,
// dedicated cancellation collective), the bucket-planned serial exchange
// with the async prefetcher, the fully overlapped exchange, and the
// overlapped exchange on the FP16 wire.
//
// steps/s is host throughput (compute-bound on this 1-core reference
// container — the exchange is ~5% of host time). virtual-us/step is the
// fabric-timed step cost, the quantity the paper's overlap optimizations
// move: fused buckets cut latency-bound control and collective hops, and
// the overlapped driver hides the exchange behind the backward timeline.
func BenchmarkMultiRankStep(b *testing.B) {
	const steps, ranks = 12, 8
	for _, tc := range []struct {
		name string
		mode core.ExchangeMode
		wire mpi.Wire
	}{
		{"legacy-serial", core.ExchangeLegacy, mpi.WireFP32},
		{"bucketed-serial", core.ExchangeSerial, mpi.WireFP32},
		{"overlapped", core.ExchangeOverlap, mpi.WireFP32},
		{"overlapped-fp16wire", core.ExchangeOverlap, mpi.WireFP16},
	} {
		b.Run(fmt.Sprintf("%s/%drank", tc.name, ranks), func(b *testing.B) {
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := multiRankStepConfig(steps, ranks)
				cfg.Exchange = tc.mode
				cfg.Wire = tc.wire
				var err error
				res, err = core.Train(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(steps*b.N)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(res.Makespan/float64(steps)*1e6, "virtual-us/step")
			b.ReportMetric(float64(steps)/res.Makespan, "virtual-steps/s")
			b.ReportMetric(res.OverlapFrac*100, "%overlap")
			b.ReportMetric(float64(res.CtlStats.Batches)/float64(steps), "buckets/step")
			b.ReportMetric(float64(res.CtlStats.WireBytes)/float64(steps)/1e3, "wire-KB/step")
		})
	}
}

// BenchmarkCheckpointOverhead measures what full-state snapshots cost the
// training hot path. The writer is asynchronous — rank 0 deep-copies the
// state at the step boundary and a background goroutine encodes, commits
// (atomic rename), and prunes. The acceptance bar is <5% of steps/s at the
// every-4-steps cadence (already far denser than production checkpointing,
// which runs on minutes); every-step is the saturation stress case, where
// on a single-core host the writer's encode CPU shares the core with
// compute and the overhead is expected to exceed the bar.
func BenchmarkCheckpointOverhead(b *testing.B) {
	const steps, ranks = 12, 4
	for _, tc := range []struct {
		name  string
		every int
	}{
		{"off", 0},
		{"every-4", 4},
		{"every-step", 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			base := b.TempDir()
			var res *core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := multiRankStepConfig(steps, ranks)
				if tc.every > 0 {
					// A fresh directory per run: the trainer refuses to
					// checkpoint a fresh run over another run's snapshots.
					cfg.CheckpointEvery = tc.every
					cfg.CheckpointDir = filepath.Join(base, strconv.Itoa(i))
					cfg.CheckpointRetain = 2
				}
				var err error
				res, err = core.Train(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if tc.every > 0 && res.CheckpointsWritten != steps/tc.every {
					b.Fatalf("wrote %d checkpoints, want %d", res.CheckpointsWritten, steps/tc.every)
				}
			}
			b.ReportMetric(float64(steps*b.N)/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(res.CheckpointsWritten*b.N), "snapshots")
		})
	}
}

// ---------- §V-B ablations ----------

func BenchmarkWeightedLossAblation(b *testing.B) {
	for _, scheme := range []loss.Weighting{
		loss.Unweighted, loss.InverseFrequency, loss.InverseSqrtFrequency,
	} {
		b.Run(scheme.String(), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				cfg := tinyTrainConfig(12, 2)
				cfg.Weighting = scheme
				cfg.ValidationSize = 2
				var err error
				res, err = core.Train(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Accuracy*100, "%accuracy")
			b.ReportMetric(res.FinalLoss, "loss-final")
		})
	}
}

func BenchmarkLARCAblation(b *testing.B) {
	for _, larc := range []bool{false, true} {
		name := "sgd"
		if larc {
			name = "sgd+larc"
		}
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				cfg := tinyTrainConfig(12, 1)
				cfg.Optimizer = core.SGD
				cfg.LR = 0.5 // intentionally aggressive for the contrast
				cfg.UseLARC = larc
				var err error
				res, err = core.Train(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.FinalLoss, "loss-final")
		})
	}
}

func BenchmarkGradientLag(b *testing.B) {
	s0 := summitScaling(b, "deeplab", graph.FP16, 0)
	s1 := summitScaling(b, "deeplab", graph.FP16, 1)
	var p0, p1 perfmodel.Point
	for i := 0; i < b.N; i++ {
		p0 = s0.At(27360)
		p1 = s1.At(27360)
	}
	b.ReportMetric(p0.Efficiency*100, "%eff-lag0")
	b.ReportMetric(p1.Efficiency*100, "%eff-lag1")
}

func BenchmarkTiramisuGrowthAblation(b *testing.B) {
	// §V-B5: growth-32/5×5 (modified) vs growth-16/3×3 (original).
	mod := paperAnalysis(b, "tiramisu", graph.FP32, 1, 16)
	orig := paperAnalysis(b, "tiramisu-orig", graph.FP32, 1, 16)
	gpu := perfmodel.V100()
	var modPerf, origPerf perfmodel.SingleGPU
	for i := 0; i < b.N; i++ {
		modPerf = perfmodel.SingleGPUPerf("mod", mod, gpu, graph.FP32)
		origPerf = perfmodel.SingleGPUPerf("orig", orig, gpu, graph.FP32)
	}
	// The paper's point is GPU efficiency: growth 32 with 5×5 filters runs
	// at a far higher fraction of peak (wider GEMMs, fewer kernels), which
	// shows up here as delivered TF/s and %peak.
	b.ReportMetric(float64(mod.TotalKernels()), "kernels-modified")
	b.ReportMetric(float64(orig.TotalKernels()), "kernels-original")
	b.ReportMetric(modPerf.TFps, "TFps-modified")
	b.ReportMetric(origPerf.TFps, "TFps-original")
	b.ReportMetric(modPerf.PctPeak, "%peak-modified")
	b.ReportMetric(origPerf.PctPeak, "%peak-original")
}

// BenchmarkDecoderLayoutAblation reproduces §VII-A: removing the decoder's
// layout transposes was worth 10% at the largest scale.
func BenchmarkDecoderLayoutAblation(b *testing.B) {
	build := func(transposes bool) *graph.Analysis {
		cfg := models.PaperDeepLab(models.Config{
			BatchSize: 2, InChannels: 16, NumClasses: 3,
			Height: 768, Width: 1152, Symbolic: true, Seed: 1,
		})
		cfg.DecoderTransposes = transposes
		net, err := models.BuildDeepLab(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return graph.Analyze(net.Graph, graph.AnalyzeOptions{
			Precision: graph.FP16, IncludeOptimizer: true,
			IncludeAllreduce: true, IncludeTypeConversion: true,
		})
	}
	withT, without := build(true), build(false)
	gpu := perfmodel.V100()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = perfmodel.StepSeconds(withT, gpu, graph.FP16)/
			perfmodel.StepSeconds(without, gpu, graph.FP16) - 1
	}
	b.ReportMetric(speedup*100, "%speedup") // paper: 10
}

// ---------- raw kernel microbenchmarks ----------

func BenchmarkTiramisuForwardBackward(b *testing.B) {
	net, err := models.BuildTiramisu(models.TinyTiramisu(models.Config{
		BatchSize: 1, InChannels: 16, NumClasses: 3,
		Height: 32, Width: 32, Seed: 3,
	}))
	if err != nil {
		b.Fatal(err)
	}
	ds := climate.NewDataset(climate.DefaultGenConfig(32, 32, 9), 2)
	sample := ds.Sample(0)
	weights := loss.ClassWeights([]float64{0.97, 0.01, 0.02}, loss.InverseSqrtFrequency)
	labels := sample.Labels.Reshape(tensor.Shape{1, 32, 32})
	feeds := map[*graph.Node]*tensor.Tensor{
		net.Images:  sample.Fields.Reshape(tensor.NCHW(1, 16, 32, 32)),
		net.Labels:  labels,
		net.Weights: loss.WeightMap(labels, weights),
	}
	// Persistent pooled executor across steps — the trainer's per-rank
	// configuration after the workspace refactor.
	ex := graph.NewPooledExecutor(net.Graph, graph.FP32, 1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Reseed(int64(i))
		if err := ex.Forward(feeds); err != nil {
			b.Fatal(err)
		}
		if err := ex.Backward(net.Loss); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- §VIII future work: model parallelism ----------

// BenchmarkModelParallelStack runs a functional spatially-decomposed
// convolution stack over one simulated Summit node and reports the halo
// traffic and virtual makespan; correctness against the serial kernels is
// asserted by the modelpar tests.
func BenchmarkModelParallelStack(b *testing.B) {
	for _, ways := range []int{2, 6} {
		b.Run(fmt.Sprintf("%dway", ways), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			const h, w = 48, 72
			input := tensor.RandNormal(tensor.NCHW(1, 16, h, w), 0, 1, rng)
			layers := []modelpar.Layer{
				{Weights: tensor.RandNormal(tensor.Shape{32, 16, 3, 3}, 0, 0.2, rng), Spec: modelpar.ConvSpec{Dilation: 1}, ReLU: true},
				{Weights: tensor.RandNormal(tensor.Shape{32, 32, 3, 3}, 0, 0.2, rng), Spec: modelpar.ConvSpec{Dilation: 2}, ReLU: true},
				{Weights: tensor.RandNormal(tensor.Shape{3, 32, 3, 3}, 0, 0.2, rng), Spec: modelpar.ConvSpec{Dilation: 1}},
			}
			plan, err := modelpar.NewPlan(h, ways)
			if err != nil {
				b.Fatal(err)
			}
			var makespan float64
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One Summit-like node hosting exactly `ways` GPUs on NVLink.
				w2 := mpi.NewWorld(simnet.NewTwoLevelFabric(1, ways,
					simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
					simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9}))
				makespan = w2.Run(func(c *mpi.Comm) {
					var in *tensor.Tensor
					if c.Rank() == 0 {
						in = input
					}
					local := modelpar.Scatter(modelpar.World(c), plan, 0, in)
					out := modelpar.StackForward(modelpar.World(c), plan, local, layers)
					modelpar.Gather(modelpar.World(c), plan, 0, out)
				})
				bytes = w2.BytesSent()
			}
			b.ReportMetric(makespan*1e6, "virtual-us")
			b.ReportMetric(float64(bytes)/1e3, "fabric-KB")
			b.ReportMetric(float64(modelpar.HaloBytes(plan, ways/2, 1, w, layers))/1e3, "halo-KB/rank")
		})
	}
}

// BenchmarkModelParallelAnalytic sweeps the perfmodel's spatial
// decomposition at paper scale (768×1152 FP16 layers on Summit NVLink).
func BenchmarkModelParallelAnalytic(b *testing.B) {
	mp := perfmodel.ModelParallelConfig{
		Machine: perfmodel.Summit(),
		Height:  768, Width: 1152, Channels: 64,
		HaloRows: 2, Layers: 20, ElemBytes: 2,
	}
	var best int
	var eff6 float64
	for i := 0; i < b.N; i++ {
		best = mp.BestWays(0.02, 24)
		eff6 = mp.Efficiency(0.02, 6)
	}
	b.ReportMetric(float64(best), "best-ways")
	b.ReportMetric(eff6*100, "%eff-6way")
}

// ---------- §V-B4 extension: EASGD ----------

// BenchmarkEASGD contrasts elastic-averaging training (communication every
// τ steps) with synchronous all-reduce SGD on the same problem: similar
// final loss, a fraction of the traffic — the trade the paper's lag-1
// optimizer makes in miniature.
func BenchmarkEASGD(b *testing.B) {
	ls, _ := easgd.NewLeastSquares(64, 8, 3)
	init := make([]float32, ls.Dim())
	cfg := easgd.Config{LR: 0.02, Rho: 1.5, Period: 8, Steps: 1200, Seed: 5}
	var elastic, sync *easgd.Result
	for i := 0; i < b.N; i++ {
		var err error
		elastic, err = easgd.Run(mpi.NewWorld(simnet.Loopback(4)), cfg, ls, init)
		if err != nil {
			b.Fatal(err)
		}
		sync, err = easgd.RunSync(mpi.NewWorld(simnet.Loopback(4)), cfg, ls, init)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sync.BytesSent)/float64(elastic.BytesSent), "traffic-reduction")
	b.ReportMetric(elastic.CenterLoss, "loss-easgd")
	b.ReportMetric(sync.CenterLoss, "loss-sync")
}

// ---------- §V-A3: radix and fusion sensitivity ----------

// BenchmarkRadixSweep reproduces the paper's observation that the
// hierarchical control tree is insensitive to radix between 2 and 8: the
// per-rank message bound changes, but the functional session time barely
// moves (TensorFlow-style dynamic scheduling tolerates the latency).
func BenchmarkRadixSweep(b *testing.B) {
	for _, radix := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("r%d", radix), func(b *testing.B) {
			const ranks, tensors = 16, 12
			var makespan float64
			var stats horovod.Stats
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(simnet.Loopback(ranks))
				makespan = w.Run(func(c *mpi.Comm) {
					sess := horovod.NewSession(c, allreduce.Flat{Algorithm: mpi.Ring}, horovod.Tree(radix))
					grads := map[horovod.TensorID][]float32{}
					var order []horovod.TensorID
					for t := 0; t < tensors; t++ {
						id := horovod.TensorID(t)
						grads[id] = make([]float32, 64)
						order = append(order, id)
					}
					sess.Step(order, grads)
					if c.Rank() == 0 {
						stats = sess.Stats()
					}
				})
			}
			root, interior := horovod.ControlLoad(27360, radix, 110)
			b.ReportMetric(makespan*1e6, "virtual-us")
			b.ReportMetric(float64(stats.CtlReceived), "root-ctl-recv")
			b.ReportMetric(float64(root), "root-msgs@27360")
			b.ReportMetric(float64(interior), "interior-msgs@27360")
		})
	}
}

// BenchmarkTensorFusion measures Horovod's fusion buffer: batching ready
// tensors into fewer collectives cuts both control traffic and all-reduce
// launches (the effect gradient lag amplifies, per §V-B4).
func BenchmarkTensorFusion(b *testing.B) {
	for _, fusion := range []int{1, 8} {
		b.Run(fmt.Sprintf("fuse%d", fusion), func(b *testing.B) {
			const ranks, tensors = 8, 24
			var batches int
			var makespan float64
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(simnet.Loopback(ranks))
				makespan = w.Run(func(c *mpi.Comm) {
					cfg := horovod.Tree(4)
					cfg.FusionTensors = fusion
					sess := horovod.NewSession(c, allreduce.Flat{Algorithm: mpi.Ring}, cfg)
					grads := map[horovod.TensorID][]float32{}
					var order []horovod.TensorID
					for t := 0; t < tensors; t++ {
						id := horovod.TensorID(t)
						grads[id] = make([]float32, 256)
						order = append(order, id)
					}
					sess.Step(order, grads)
					if c.Rank() == 0 {
						batches = sess.Stats().Batches
					}
				})
			}
			b.ReportMetric(float64(batches), "allreduce-batches")
			b.ReportMetric(makespan*1e6, "virtual-us")
		})
	}
}

// ---------- §V-B3: channel ablation ----------

// BenchmarkChannelAblation contrasts 4-channel (the Piz Daint subset) and
// 16-channel training, the paper's observation that the full multivariate
// input "improved the accuracy of the models dramatically".
func BenchmarkChannelAblation(b *testing.B) {
	run := func(b *testing.B, channels []int, inCh int) *core.Result {
		b.Helper()
		cfg := tinyTrainConfig(25, 2)
		cfg.Channels = channels
		cfg.ValidationSize = 3
		cfg.BuildNet = func() (*models.Network, error) {
			return models.BuildTiramisu(models.TinyTiramisu(models.Config{
				BatchSize: 1, InChannels: inCh, NumClasses: 3,
				Height: 16, Width: 16, Seed: 7,
			}))
		}
		res, err := core.Train(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("4ch", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = run(b, climate.PizDaintChannels, len(climate.PizDaintChannels))
		}
		b.ReportMetric(res.MeanIoU*100, "%meanIoU")
		b.ReportMetric(res.FinalLoss, "loss-final")
	})
	b.Run("16ch", func(b *testing.B) {
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = run(b, nil, climate.NumChannels)
		}
		b.ReportMetric(res.MeanIoU*100, "%meanIoU")
		b.ReportMetric(res.FinalLoss, "loss-final")
	})
}

// ---------- PR 4: batched tiled-inference serving ----------

// servingNet is the serving benchmark model: the tiny Tiramisu topology
// with the paper's dropout rate (0.2) — the configuration the pre-batching
// Segment path actually executed at inference time, dropout and all.
func servingNet(b *testing.B) *models.Network {
	b.Helper()
	net, err := models.BuildTiramisu(models.TiramisuConfig{
		Config: models.Config{
			BatchSize: 1, InChannels: climate.NumChannels, NumClasses: 3,
			Height: 16, Width: 16, Seed: 3,
		},
		GrowthRate: 4, Kernel: 3, DownLayers: []int{2, 2},
		BottleneckLayers: 2, InitialChannels: 8, DropoutRate: 0.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// legacySingleTileSegment replicates one pre-PR-4 Model.Segment call bit
// for bit in structure: adapter rebuilt with placeholder label/weight
// feeds, a fresh pooled executor per call, the full training graph (loss
// head, training-mode batch norm and dropout) executed per tile, kernel
// caches dropped on return.
func legacySingleTileSegment(b *testing.B, net *models.Network, fields *tensor.Tensor, tileHW, overlap int) *tensor.Tensor {
	b.Helper()
	fs := fields.Shape()
	c, h, w := fs[0], fs[1], fs[2]
	cfg := infer.Config{TileH: tileHW, TileW: tileHW, Overlap: overlap, Precision: graph.FP32}
	tiles, err := infer.Plan(h, w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	lshape := tensor.Shape{1, h, w}
	mask := tensor.New(tensor.Shape{h, w})
	window := tensor.New(tensor.NCHW(1, c, tileHW, tileHW))
	ex := graph.NewPooledExecutor(net.Graph, graph.FP32, 1, nil)
	defer graph.ReleaseOpCaches(net.Graph)
	feeds := map[*graph.Node]*tensor.Tensor{
		net.Images:  window,
		net.Labels:  tensor.New(lshape),
		net.Weights: tensor.Ones(lshape),
	}
	for _, t := range tiles {
		cropWindow(fields, window, t.Y, t.X, tileHW)
		if err := ex.Forward(feeds); err != nil {
			b.Fatal(err)
		}
		pred := loss.Predictions(ex.Value(net.Logits))
		pd, md := pred.Data(), mask.Data()
		for y := t.KeepY0; y < t.KeepY1; y++ {
			for x := t.KeepX0; x < t.KeepX1; x++ {
				md[(t.Y+y)*w+t.X+x] = pd[y*tileHW+x]
			}
		}
	}
	return mask
}

func cropWindow(src, dst *tensor.Tensor, y, x, t int) {
	ss := src.Shape()
	c, h, w := ss[0], ss[1], ss[2]
	sd, dd := src.Data(), dst.Data()
	for ch := 0; ch < c; ch++ {
		for r := 0; r < t; r++ {
			copy(dd[ch*t*t+r*t:ch*t*t+r*t+t], sd[ch*h*w+(y+r)*w+x:ch*h*w+(y+r)*w+x+t])
		}
	}
}

// BenchmarkServing is the serving acceptance benchmark: a stream of
// window-sized (single-tile) segmentation requests served two ways —
// serially through the pre-refactor Segment path (per-call adapter,
// executor, loss head, training-mode normalization), and through the
// batched serving stack (16 concurrent clients, cross-request
// micro-batching at the max batch). It reports both throughputs, the
// speedup (the ≥1.5× acceptance quantity), and the server's latency
// quantiles. Masks are bit-identical across the engines for dropout-free
// configurations (asserted by the infer and exaclim test suites); this
// configuration carries the paper's dropout, which the legacy path really
// executed per tile.
func BenchmarkServing(b *testing.B) {
	const tileHW, overlap, nReq, clients, maxBatch = 16, 2, 96, 16, 8
	net := servingNet(b)
	ds := climate.NewDataset(climate.DefaultGenConfig(tileHW, tileHW, 7), 8)
	fields := make([]*tensor.Tensor, 8)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}

	var legacyRPS, serveRPS, p50ms, p99ms, meanBatch float64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		// Phase 1: the legacy serial single-tile Segment path.
		runtime.GC()
		start := time.Now()
		for i := 0; i < nReq; i++ {
			legacySingleTileSegment(b, net, fields[i%len(fields)], tileHW, overlap)
		}
		legacyRPS = float64(nReq) / time.Since(start).Seconds()

		// Phase 2: the batched serving stack under concurrent clients. The
		// GC fence keeps phase 1's per-call allocation debt from being
		// collected on phase 2's clock.
		runtime.GC()
		model, err := exaclim.BuildModel("tiramisu", exaclim.Tiny, exaclim.ModelConfig{
			Height: tileHW, Width: tileHW, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		copyWeights(b, net, model)
		srv, err := exaclim.NewServer(model,
			exaclim.WithReplicas(1),
			exaclim.WithMaxBatch(maxBatch),
			exaclim.WithQueueDepth(256),
			exaclim.WithBatchDeadline(200*time.Microsecond),
			exaclim.WithServeSegmentConfig(exaclim.SegmentConfig{Overlap: overlap}),
		)
		if err != nil {
			b.Fatal(err)
		}
		var wg sync.WaitGroup
		jobs := make(chan int)
		start = time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if _, _, err := srv.Segment(context.Background(), fields[i%len(fields)]); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		for i := 0; i < nReq; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		serveRPS = float64(nReq) / time.Since(start).Seconds()
		st := srv.Stats()
		p50ms = st.LatencyP50.Seconds() * 1e3
		p99ms = st.LatencyP99.Seconds() * 1e3
		meanBatch = st.MeanBatch
		srv.Close()
	}
	b.ReportMetric(serveRPS, "req/s")
	b.ReportMetric(legacyRPS, "serial-req/s")
	b.ReportMetric(serveRPS/legacyRPS, "batch-speedup")
	b.ReportMetric(p50ms, "p50-ms")
	b.ReportMetric(p99ms, "p99-ms")
	b.ReportMetric(meanBatch, "mean-batch")
}

// copyWeights copies src's parameter tensors into the registry-built model
// (same topology, different dropout seeds — weights are what matter).
func copyWeights(b *testing.B, src *models.Network, dst *exaclim.Model) {
	b.Helper()
	ckpt := filepath.Join(b.TempDir(), "serving.ckpt")
	if err := models.SaveParamsFile(ckpt, src.Graph); err != nil {
		b.Fatal(err)
	}
	if err := dst.LoadCheckpoint(ckpt); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdaptiveServing is the adaptive-compute acceptance benchmark:
// sparse-storm full-snapshot traffic (the paper's realistic serving regime
// — most tiles pure background) served twice by the same stack over a
// briefly trained model: FP32 full decodes, then the calibrated early-exit
// path. It reports both throughputs, the speedup (the ≥2× acceptance
// quantity), the exit rate, the exit-check/decode cost ratio, and the
// measured relative logit error of the reduced-precision kernel sets.
// Masks are asserted bit-identical between the two servings — the
// calibration set is the served traffic, where bit-parity holds by
// construction.
func BenchmarkAdaptiveServing(b *testing.B) {
	const fhw, nSnap, nReq, clients, maxBatch = 96, 6, 32, 16, 8
	// ~60 training steps is enough for mostly-background decodes on
	// sparse traffic; an untrained net labels everything storm and the
	// exit path has nothing to do.
	exp, err := exaclim.New(append(exaclim.Quickstart(),
		exaclim.WithSyntheticData(16, 16, 32, 42),
		exaclim.WithSeed(2),
		exaclim.WithSteps(60))...)
	if err != nil {
		b.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	model := res.Model

	gen := climate.DefaultGenConfig(fhw, fhw, 7)
	gen.MinTCs, gen.MaxTCs = 0, 1 // sparse: at most one storm system each
	gen.MinARs, gen.MaxARs = 0, 1
	ds := climate.NewDataset(gen, nSnap)
	fields := make([]*tensor.Tensor, nSnap)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}
	segCfg := exaclim.SegmentConfig{Overlap: 2}
	cal, err := model.CalibrateExit(fields, segCfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if cal.ExitRate == 0 {
		b.Fatal("calibration predicts no exits; the adaptive path is idle")
	}
	fp16Err, int8Err := quantRelErr(b, fields[0])

	serve := func(opts ...exaclim.ServerOption) (float64, exaclim.ServerStats, [][]float32) {
		srv, err := exaclim.NewServer(model, append([]exaclim.ServerOption{
			exaclim.WithReplicas(1),
			exaclim.WithMaxBatch(maxBatch),
			exaclim.WithQueueDepth(256),
			exaclim.WithBatchDeadline(200 * time.Microsecond),
			exaclim.WithServeSegmentConfig(segCfg),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		masks := make([][]float32, nSnap)
		var wg sync.WaitGroup
		jobs := make(chan int)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					mask, _, err := srv.Segment(context.Background(), fields[i%nSnap])
					if err != nil {
						b.Error(err)
						return
					}
					if i < nSnap {
						masks[i] = mask.Data()
					}
				}
			}()
		}
		for i := 0; i < nReq; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		return float64(nReq) / time.Since(start).Seconds(), srv.Stats(), masks
	}

	var baseRPS, adptRPS, exitRate, costRatio, p50ms, p99ms float64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		runtime.GC()
		var baseMasks, adptMasks [][]float32
		var ast exaclim.ServerStats
		baseRPS, _, baseMasks = serve()
		runtime.GC()
		adptRPS, ast, adptMasks = serve(exaclim.WithCalibratedExit(cal))
		for i := range baseMasks {
			for p, v := range baseMasks[i] {
				if adptMasks[i][p] != v {
					b.Fatalf("snapshot %d: adaptive mask diverges from FP32 full decode at pixel %d", i, p)
				}
			}
		}
		exitRate = ast.ExitRate
		costRatio = ast.ExitCheckP50.Seconds() / ast.DecodeP50.Seconds()
		p50ms = ast.LatencyP50.Seconds() * 1e3
		p99ms = ast.LatencyP99.Seconds() * 1e3
	}
	b.ReportMetric(adptRPS, "req/s")
	b.ReportMetric(baseRPS, "fp32-req/s")
	b.ReportMetric(adptRPS/baseRPS, "adaptive-speedup")
	b.ReportMetric(exitRate, "exit-rate")
	b.ReportMetric(costRatio, "exit-cost-ratio")
	b.ReportMetric(p50ms, "p50-ms")
	b.ReportMetric(p99ms, "p99-ms")
	b.ReportMetric(fp16Err, "fp16-logit-relerr")
	b.ReportMetric(int8Err, "int8-logit-relerr")
}

// quantRelErr measures the FP16 and INT8 kernel sets' worst relative logit
// error (max |logit − logit_fp32| / max |logit_fp32|) over a few tiles of a
// real sparse snapshot, on an untrained tiny Tiramisu — the measured side
// of the precision contract whose asserted bounds are 2e-3 (FP16) and 6e-2
// (INT8).
func quantRelErr(b *testing.B, fields *tensor.Tensor) (fp16, int8 float64) {
	b.Helper()
	const tile = 16
	net, err := models.BuildTiramisu(models.TinyTiramisu(models.Config{
		BatchSize: 1, InChannels: climate.NumChannels, NumClasses: climate.NumClasses,
		Height: tile, Width: tile, Seed: 3,
	}))
	if err != nil {
		b.Fatal(err)
	}
	logits := func(prec graph.Precision, window *tensor.Tensor) []float32 {
		g, m, err := graph.CloneForInference(net.Graph, net.Logits, 1, nn.InferenceFusions)
		if err != nil {
			b.Fatal(err)
		}
		if prec == graph.INT8 {
			if err := nn.MarkInt8(g); err != nil {
				b.Fatal(err)
			}
		}
		ex := graph.NewPooledExecutor(g, prec, 1, nil)
		defer graph.ReleaseOpCaches(g)
		if err := ex.Forward(map[*graph.Node]*tensor.Tensor{m[net.Images]: window}); err != nil {
			b.Fatal(err)
		}
		return append([]float32(nil), ex.Value(m[net.Logits]).Data()...)
	}
	window := tensor.New(tensor.NCHW(1, climate.NumChannels, tile, tile))
	for _, pos := range [][2]int{{0, 0}, {40, 40}, {80, 80}} {
		cropWindow(fields, window, pos[0], pos[1], tile)
		ref := logits(graph.FP32, window)
		var scale float64
		for _, v := range ref {
			scale = math.Max(scale, math.Abs(float64(v)))
		}
		for _, prec := range []graph.Precision{graph.FP16, graph.INT8} {
			var worst float64
			for i, v := range logits(prec, window) {
				worst = math.Max(worst, math.Abs(float64(v-ref[i])))
			}
			if prec == graph.FP16 {
				fp16 = math.Max(fp16, worst/scale)
			} else {
				int8 = math.Max(int8, worst/scale)
			}
		}
	}
	return fp16, int8
}

// ---------- PR 10: sharded serving fleet with live hot-swap ----------

// BenchmarkFleetServing is the fleet acceptance benchmark: full-snapshot
// segmentation requests scattered over simulated shard nodes, measured on
// the serving fabric's virtual clocks so shard-count scaling is
// host-independent. Four phases per iteration: a 1-shard fleet (the
// scaling baseline), a 4-shard fleet under the same load (virtual req/s
// ratio is the ≥2.5× acceptance quantity), a rolling weight hot-swap under
// continued load on the 4-shard fleet (swap-window tail latency and the
// zero-drop guarantee), and a chaos run where one shard is killed mid-load
// (re-dispatch rate around the dead shard).
func BenchmarkFleetServing(b *testing.B) {
	const (
		tileHW, overlap = 16, 2
		fieldHW         = 64
		nReq, clients   = 32, 8
		maxBatch        = 4
		shards          = 4
	)
	net := servingNet(b)
	ds := climate.NewDataset(climate.DefaultGenConfig(fieldHW, fieldHW, 7), 8)
	fields := make([]*tensor.Tensor, 8)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}
	model, err := exaclim.BuildModel("tiramisu", exaclim.Tiny, exaclim.ModelConfig{
		Height: tileHW, Width: tileHW, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	copyWeights(b, net, model)

	// The hot-swap payload: the same weights re-captured as a committed
	// step-1 training snapshot, so the swap drives the full rolling
	// protocol without perturbing the masks.
	params, err := models.CaptureParamsInto(net.Graph, nil)
	if err != nil {
		b.Fatal(err)
	}
	swapDir := b.TempDir()
	state := &models.TrainState{Step: 1, Ranks: 1, GlobalBatch: 1, Params: params}
	if _, err := models.WriteSnapshotAtomic(swapDir, state, false); err != nil {
		b.Fatal(err)
	}

	segCfg := exaclim.SegmentConfig{Overlap: overlap}
	drive := func(n int, seg func(context.Context, *tensor.Tensor) (*tensor.Tensor, exaclim.FleetStat, error)) {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if _, _, err := seg(context.Background(), fields[i%len(fields)]); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	tileCfg := infer.Config{TileH: tileHW, TileW: tileHW, Overlap: overlap, Precision: graph.FP32}
	var virt1, virt4, wallRPS, swapP99ms, swapDrops, swaps, redispatchPct float64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		// Phase 1: the 1-shard fleet is the scaling baseline. It
		// calibrates the per-tile virtual charge; the other topologies pin
		// the same charge so every shard count prices compute identically
		// and the ratio measures the fabric model, not wall-clock noise.
		runtime.GC()
		// The deep admission window (16 batches a shard) keeps every
		// shard's virtual timeline supplied: with a shallow window, each
		// refill round couples all shards to the globally latest result
		// the router has seen, and the makespan accumulates the per-round
		// jitter instead of the per-shard compute.
		f1, err := fleet.New(infer.FromModel(net), fleet.Config{
			Shards: 1, MaxBatch: maxBatch, AdmitPerShard: 16 * maxBatch, Tile: tileCfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		drive(nReq, f1.Segment)
		virt1 = f1.Stats().VirtualReqPerSec
		tileCost := f1.TileCost()
		f1.Close()

		// Phase 2: the same load over 4 shards; virtual req/s is the
		// scaling figure, wall req/s is this host's throughput.
		runtime.GC()
		f4, err := fleet.New(infer.FromModel(net), fleet.Config{
			Shards: shards, MaxBatch: maxBatch, AdmitPerShard: 16 * maxBatch,
			Tile: tileCfg, TileCost: tileCost,
		})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		drive(nReq, f4.Segment)
		wallRPS = float64(nReq) / time.Since(start).Seconds()
		virt4 = f4.Stats().VirtualReqPerSec
		f4.Close()

		// Phase 3: a rolling hot-swap rides the same load through the
		// public fleet API. The acceptance guarantee is zero dropped
		// requests.
		runtime.GC()
		fs, err := exaclim.NewFleet(model,
			exaclim.WithShards(shards),
			exaclim.WithFleetMaxBatch(maxBatch),
			exaclim.WithFleetSegmentConfig(segCfg),
		)
		if err != nil {
			b.Fatal(err)
		}
		var swapErr error
		var sw sync.WaitGroup
		sw.Add(1)
		go func() {
			defer sw.Done()
			swapErr = fs.SwapCheckpoint(swapDir)
		}()
		drive(nReq, fs.Segment)
		sw.Wait()
		if swapErr != nil {
			b.Fatal(swapErr)
		}
		st := fs.Stats()
		swapP99ms = st.SwapWindowP99.Seconds() * 1e3
		swapDrops = float64(st.Failed)
		swaps = float64(st.Swaps)
		fs.Close()

		// Phase 4: chaos — shard 1 dies once it sees traffic from the
		// third admitted request; survivors re-decode its lost tiles.
		runtime.GC()
		ff := simnet.NewFaultFabric(simnet.ServingCluster(shards))
		ff.FailNode(2, 3)
		fc, err := fleet.New(infer.FromModel(net), fleet.Config{
			Shards: shards, MaxBatch: maxBatch, AdmitPerShard: 16 * maxBatch,
			Tile: tileCfg, TileCost: tileCost, Fabric: ff,
		})
		if err != nil {
			b.Fatal(err)
		}
		drive(nReq, fc.Segment)
		cs := fc.Stats()
		if cs.Tiles > 0 {
			redispatchPct = 100 * float64(cs.Redispatched) / float64(cs.Tiles)
		}
		fc.Close()
	}
	b.ReportMetric(virt4, "virt-req/s")
	b.ReportMetric(virt1, "virt-req/s-1shard")
	b.ReportMetric(virt4/virt1, "shard-speedup")
	b.ReportMetric(wallRPS, "req/s")
	b.ReportMetric(swaps, "swaps")
	b.ReportMetric(swapP99ms, "swap-p99-ms")
	b.ReportMetric(swapDrops, "swap-drops")
	b.ReportMetric(redispatchPct, "%redispatched")
}

// ---------- tiled inference ----------

// BenchmarkTiledInference measures full-snapshot segmentation throughput
// through the tiling path (the deployment configuration of the science use
// case).
func BenchmarkTiledInference(b *testing.B) {
	const th, tw, fh, fw = 16, 16, 48, 64
	net, err := models.BuildTiramisu(models.TinyTiramisu(models.Config{
		BatchSize: 1, InChannels: climate.NumChannels, NumClasses: 3,
		Height: th, Width: tw, Seed: 3,
	}))
	if err != nil {
		b.Fatal(err)
	}
	inet := infer.FromModel(net)
	ds := climate.NewDataset(climate.DefaultGenConfig(fh, fw, 7), 1)
	fields := ds.Sample(0).Fields
	cfg := infer.Config{TileH: th, TileW: tw, Overlap: 2, Precision: graph.FP32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.Run(inet, fields, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fh*fw)*float64(b.N)/b.Elapsed().Seconds(), "pixels/s")
}

// ---------- strong scaling (Section III's "analogous form") ----------

// BenchmarkStrongScaling holds the global batch fixed while growing the GPU
// count — the regime the paper says matters when large-batch
// hyperparameters cannot be found.
func BenchmarkStrongScaling(b *testing.B) {
	s := summitScaling(b, "deeplab", graph.FP16, 1)
	const globalBatch = 1536
	var e768, e6144 float64
	for i := 0; i < b.N; i++ {
		p768 := s.StrongScalingAt(768, globalBatch)
		p6144 := s.StrongScalingAt(6144, globalBatch)
		e768, e6144 = p768.Efficiency, p6144.Efficiency
	}
	b.ReportMetric(e768*100, "%eff-768gpu")
	b.ReportMetric(e6144*100, "%eff-6144gpu")
}

// ---------- §VIII-B future work: input compression ----------

// BenchmarkCompression measures the 16-bit+DEFLATE climate compressor: the
// achieved ratio on synthetic CAM5 fields, this host's decode throughput,
// and whether the Section VIII-B trade (CPU cycles for file-system
// bandwidth) wins at the paper's staging rates.
func BenchmarkCompression(b *testing.B) {
	ds := climate.NewDataset(climate.DefaultGenConfig(96, 144, 7), 1)
	fields := ds.Sample(0).Fields
	var ratio float64
	var decoded int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, ratio, err = compress.Roundtrip(fields)
		if err != nil {
			b.Fatal(err)
		}
		decoded += int64(fields.NumElements() * 4)
	}
	b.SetBytes(int64(fields.NumElements() * 4))
	b.ReportMetric(ratio, "ratio")
	b.ReportMetric(float64(decoded)/b.Elapsed().Seconds()/1e6, "host-MB/s")
	// Sizing per Section VIII-B: a Summit node decompressing at ~8 GB/s
	// (dozens of cores) against the paper's 1.79 GB/s single-thread GPFS
	// rate. Per-node share of the 3.5 TB dataset across 4608 nodes.
	tr := compress.Tradeoff{FSBandwidth: 1.79e9, CPURate: 8e9, Ratio: ratio}
	perNode := 3.5e12 / 4608
	b.ReportMetric(tr.RawSeconds(perNode)/tr.CompressedSeconds(perNode), "staging-speedup")
	b.ReportMetric(tr.BreakEvenCPURate()/1e9, "breakeven-GB/s")
}

// ---------- Section VI: per-epoch validation trajectory ----------

// BenchmarkValidationTrajectory runs training with the paper's per-epoch
// validation pass enabled and reports the IoU trajectory endpoints —
// the accuracy-vs-time story behind Fig 6's convergence claims.
func BenchmarkValidationTrajectory(b *testing.B) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		cfg := tinyTrainConfig(24, 2)
		cfg.ValidationSize = 2
		cfg.ValidateEvery = 8
		var err error
		res, err = core.Train(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.ValHistory) > 0 {
		first, last := res.ValHistory[0], res.ValHistory[len(res.ValHistory)-1]
		b.ReportMetric(first.MeanIoU*100, "%meanIoU-epoch1")
		b.ReportMetric(last.MeanIoU*100, "%meanIoU-final")
	}
}

// BenchmarkHybridParallel runs the composed data×spatial step of Section
// VIII on a 2-node Summit-like fabric (2 data replicas × 2 spatial slabs):
// halo exchange on NVLink, weight-gradient averaging over InfiniBand.
func BenchmarkHybridParallel(b *testing.B) {
	const h, w, cin, cout = 24, 32, 8, 8
	rng := rand.New(rand.NewSource(5))
	weights := tensor.RandNormal(tensor.Shape{cout, cin, 3, 3}, 0, 0.3, rng)
	sample := tensor.RandNormal(tensor.NCHW(1, cin, h, w), 0, 1, rng)
	gradOut := tensor.RandNormal(tensor.NCHW(1, cout, h, w), 0, 1, rng)
	hp, err := modelpar.NewHybridPlan(h, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	fabric := simnet.NewTwoLevelFabric(2, 2,
		simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9},
		simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9})
	var makespan float64
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world := mpi.NewWorld(fabric)
		makespan = world.Run(func(c *mpi.Comm) {
			sc := hp.SpatialComm(c)
			var in, g *tensor.Tensor
			if sc.Rank() == 0 {
				in, g = sample, gradOut
			}
			localX := modelpar.Scatter(sc, hp.Spatial, 0, in)
			localG := modelpar.Scatter(sc, hp.Spatial, 0, g)
			hp.ConvForward(c, modelpar.ConvSpec{Dilation: 1}, localX, weights)
			hp.ConvBackward(c, modelpar.ConvSpec{Dilation: 1}, localX, weights, localG)
		})
		bytes = world.BytesSent()
	}
	b.ReportMetric(makespan*1e6, "virtual-us")
	b.ReportMetric(float64(bytes)/1e3, "fabric-KB")
}

// ---------- intro motivation: storm tracks over time ----------

// BenchmarkStormTracking runs the temporal pipeline the paper's
// introduction motivates ("understanding if AR tracks will shift"):
// generate a coherent sequence, extract storms per frame from the label
// masks, link them into tracks, and report trajectory statistics.
func BenchmarkStormTracking(b *testing.B) {
	const frames, h, w = 8, 64, 96
	seq, err := climate.NewSequence(climate.DefaultGenConfig(h, w, 17), frames)
	if err != nil {
		b.Fatal(err)
	}
	perFrame := make([][]*storms.Storm, frames)
	for f := 0; f < frames; f++ {
		s, err := seq.Frame(f)
		if err != nil {
			b.Fatal(err)
		}
		tcs, ars := storms.ExtractAll(s, 4)
		perFrame[f] = append(tcs, ars...)
	}
	var tracks []*storms.Track
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracks = storms.LinkTracks(perFrame, w, h/5)
	}
	longest := 0
	if len(tracks) > 0 {
		longest = tracks[0].Duration()
	}
	b.ReportMetric(float64(len(tracks)), "tracks")
	b.ReportMetric(float64(longest), "longest-track-frames")
}

// BenchmarkStormwatch measures the streaming analytics pipeline end to
// end: a diurnal-bursty synthetic source pushed past serving capacity
// through a degrade-under-pressure frame queue, tiled inference on the
// server, and the online tracker. The reported quantities are the
// streaming acceptance numbers: sustained frames/s, the drop and degrade
// rates the backpressure policy produced, and the p99 source→tracker
// frame latency.
func BenchmarkStormwatch(b *testing.B) {
	const h, w, tile, frames = 32, 48, 16, 24
	model, err := exaclim.BuildModel("tiramisu", exaclim.Tiny, exaclim.ModelConfig{
		Height: tile, Width: tile, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	var st exaclim.StreamStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := exaclim.SyntheticSequence(h, w, frames, 11)
		if err != nil {
			b.Fatal(err)
		}
		watcher, err := exaclim.NewStormWatcher(model, exaclim.StreamConfig{
			Source:      src,
			FPS:         400, // far past 1-core serving capacity: backpressure engages
			MaxFrames:   frames,
			Profile:     exaclim.StreamDiurnal,
			BurstFactor: 4,
			BurstPeriod: time.Second,
			Policy:      exaclim.StreamDegrade,
			QueueDepth:  2,
		},
			exaclim.WithReplicas(1),
			exaclim.WithMaxBatch(8),
			exaclim.WithServeSegmentConfig(exaclim.SegmentConfig{Overlap: 2}),
		)
		if err != nil {
			b.Fatal(err)
		}
		res, err := watcher.Run(context.Background())
		watcher.Close()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Produced != res.Stats.Processed+res.Stats.Dropped {
			b.Fatalf("frame accounting leak: produced %d != processed %d + dropped %d",
				res.Stats.Produced, res.Stats.Processed, res.Stats.Dropped)
		}
		st = res.Stats
	}
	b.ReportMetric(st.EffectiveFPS, "frames/s")
	b.ReportMetric(float64(st.Dropped)/float64(st.Produced)*100, "%dropped")
	b.ReportMetric(float64(st.Degraded)/float64(st.Processed)*100, "%degraded")
	b.ReportMetric(st.LatencyP99.Seconds()*1e3, "p99-frame-ms")
}

// ---------- PR 9: SIMD kernel layer ----------

// BenchmarkKernelPeak times the synthetic FMA peak probe — 12 independent
// 8-lane FMA chains, 192 FLOPs per iteration, the register-parallelism
// upper bound of one core. The %peak figures of BenchmarkKernelGemm are
// anchored against this measured peak, not the nominal frequency×width
// product.
func BenchmarkKernelPeak(b *testing.B) {
	if !tensor.FMAPeakProbe(1) {
		b.Skip("host lacks AVX2+FMA")
	}
	const itersPerOp, flopsPerIter = 4096, 192
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.FMAPeakProbe(itersPerOp)
	}
	b.ReportMetric(float64(b.N)*itersPerOp*flopsPerIter/b.Elapsed().Seconds()/1e9, "GFLOP/s-peak")
}

// BenchmarkKernelGemm measures delivered single-threaded GEMM GFLOP/s per
// kernel ISA on the two workloads that dominate training time: the
// conv-shaped GEMM (im2col panels: short m, wide n, deep k) and a square
// compute-bound product. The avx2/scalar ratio is the PR 9 acceptance
// quantity (≥2×); %peak relates the AVX2 kernels to the measured FMA peak
// from BenchmarkKernelPeak.
func BenchmarkKernelGemm(b *testing.B) {
	var peak float64
	if tensor.FMAPeakProbe(1) {
		const iters, flopsPerIter = 1 << 20, 192
		tensor.FMAPeakProbe(iters) // warm up (frequency ramp)
		// Best-of-8: on shared hosts a single timing undershoots the
		// sustained peak and produces >100% ratios downstream.
		for trial := 0; trial < 8; trial++ {
			start := time.Now()
			tensor.FMAPeakProbe(iters)
			g := float64(iters) * flopsPerIter / time.Since(start).Seconds() / 1e9
			peak = math.Max(peak, g)
		}
	}
	prevWorkers := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prevWorkers)
	origISA := tensor.ActiveISA()
	defer tensor.SetKernelISA(origISA)

	for _, isa := range []tensor.KernelISA{tensor.ISAScalar, tensor.ISAAVX2} {
		if _, err := tensor.SetKernelISA(isa); err != nil {
			continue // avx2 unavailable on this host
		}
		for _, tc := range []struct {
			name    string
			m, n, k int
		}{
			{"conv-like-m32n1024k288", 32, 1024, 288},
			{"square-m256n512k512", 256, 512, 512},
		} {
			b.Run(isa.String()+"/"+tc.name, func(b *testing.B) {
				a := make([]float32, tc.m*tc.k)
				bb := make([]float32, tc.k*tc.n)
				c := make([]float32, tc.m*tc.n)
				for i := range a {
					a[i] = float32(i%7) - 3
				}
				for i := range bb {
					bb[i] = float32(i%5) - 2
				}
				flops := float64(2 * tc.m * tc.n * tc.k)
				b.SetBytes(int64(2 * tc.m * tc.n * tc.k))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.Gemm(false, false, tc.m, tc.n, tc.k, 1, a, tc.k, bb, tc.n, 0, c, tc.n)
				}
				gflops := flops * float64(b.N) / b.Elapsed().Seconds() / 1e9
				b.ReportMetric(gflops, "GFLOP/s")
				if peak > 0 {
					b.ReportMetric(gflops/peak*100, "%peak")
				}
			})
		}
	}
}
