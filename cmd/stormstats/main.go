// Command stormstats runs the Section VIII-A climate-science analysis over
// a synthetic dataset: storms are extracted from the heuristic label masks
// as connected components and summarized with per-event physical statistics
// (peak wind, central pressure, conditional precipitation, power
// dissipation index) plus census-level distributions.
//
// Usage:
//
//	stormstats -samples 16 -height 96 -width 144 -min-pixels 6
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"repro/exaclim"
	"repro/internal/climate"
	"repro/internal/storms"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stormstats: ")

	samples := flag.Int("samples", 16, "snapshots to analyze")
	height := flag.Int("height", 96, "grid rows")
	width := flag.Int("width", 144, "grid columns")
	seed := flag.Int64("seed", 7, "generator seed")
	minPixels := flag.Int("min-pixels", 6, "minimum component size (mask speckle filter)")
	top := flag.Int("top", 5, "largest storms to print per class")
	track := flag.Int("track", 0, "if > 0, track storms across this many coherent frames instead")
	predictSteps := flag.Int("predict-steps", 0, "if > 0, also train this many steps and census model-predicted masks through the serving stack")
	replicas := flag.Int("replicas", 1, "serving replicas for -predict-steps")
	maxBatch := flag.Int("max-batch", 8, "serving tile batch for -predict-steps")
	flag.Parse()

	if *track > 0 {
		runTracking(*height, *width, *seed, *track, *minPixels, *top)
		return
	}

	ds := exaclim.SyntheticDataset(*height, *width, *samples, *seed)
	census := storms.RunCensus(ds, *samples, *minPixels)

	fmt.Printf("census: %d snapshots, %d×%d grid\n", census.Samples, *height, *width)
	fmt.Printf("  tropical cyclones:  %d (%.2f per snapshot)\n",
		census.TCCount, float64(census.TCCount)/float64(census.Samples))
	fmt.Printf("  atmospheric rivers: %d (%.2f per snapshot)\n",
		census.ARCount, float64(census.ARCount)/float64(census.Samples))
	if census.TCCount > 0 {
		fmt.Printf("  mean TC peak wind:  %.1f m/s\n", census.MeanMaxWind())
		fmt.Printf("  TC wind quartiles:  %s m/s\n", quartiles(census.MaxWinds))
		fmt.Printf("  TC pressure quartiles: %s hPa\n", quartiles(census.MinPressures))
	}
	if census.ARCount > 0 {
		fmt.Printf("  AR precip quartiles: %s\n", quartiles(census.ARTotalPrecip))
	}

	// Per-storm detail for the largest events in the first snapshot.
	s := ds.Sample(0)
	tcs, ars := storms.ExtractAll(s, *minPixels)
	fmt.Printf("\nsnapshot 0 detail (top %d per class):\n", *top)
	for i, st := range tcs {
		if i >= *top {
			break
		}
		fmt.Printf("  %v  centroid (%.0f, %.0f)  area %.2f%%  PDI %.2e\n",
			st, st.CentroidY, st.CentroidX, 100*st.AreaFrac, st.PowerDissipation)
	}
	for i, st := range ars {
		if i >= *top {
			break
		}
		fmt.Printf("  %v  centroid (%.0f, %.0f)  area %.2f%%\n",
			st, st.CentroidY, st.CentroidX, 100*st.AreaFrac)
	}
	if len(tcs) == 0 && len(ars) == 0 {
		log.Println("no storms found in snapshot 0; try a larger grid or lower -min-pixels")
	}

	if *predictSteps > 0 {
		runPredictedCensus(ds, census, *samples, *predictSteps, *seed, *minPixels, *replicas, *maxBatch)
	}
}

// runPredictedCensus trains a small model, serves every snapshot through
// the batched serving stack concurrently, and compares the storm census
// extracted from the predicted masks against the heuristic-label census —
// the paper's deployment loop (segment → extract → analyze) end to end.
func runPredictedCensus(ds *climate.Dataset, heuristic *storms.Census, samples, steps int, seed int64, minPixels, replicas, maxBatch int) {
	const tile = 24
	exp, err := exaclim.New(
		exaclim.WithNetwork("tiramisu", exaclim.Tiny),
		exaclim.WithSyntheticData(tile, tile, 32, seed+1),
		exaclim.WithOptimizer("adam"),
		exaclim.WithLR(3e-3),
		exaclim.WithSteps(steps),
		exaclim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining %d steps for the predicted census…\n", steps)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	srv, err := exaclim.NewServer(res.Model,
		exaclim.WithReplicas(replicas),
		exaclim.WithMaxBatch(maxBatch),
		exaclim.WithServeSegmentConfig(exaclim.SegmentConfig{Overlap: 3}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	var tcCount, arCount atomic.Int64
	for i := 0; i < samples; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := ds.Sample(i)
			mask, _, err := srv.Segment(context.Background(), s.Fields)
			if err != nil {
				log.Fatal(err)
			}
			tcCount.Add(int64(len(storms.Extract(s.Fields, mask, climate.ClassTC, minPixels))))
			arCount.Add(int64(len(storms.Extract(s.Fields, mask, climate.ClassAR, minPixels))))
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("predicted census (served %d snapshots, %.1f tiles/s, p99 %.0fms, mean batch %.1f):\n",
		samples, st.TilesPerSec, st.LatencyP99.Seconds()*1e3, st.MeanBatch)
	fmt.Printf("  tropical cyclones:  %d predicted vs %d heuristic\n", tcCount.Load(), heuristic.TCCount)
	fmt.Printf("  atmospheric rivers: %d predicted vs %d heuristic\n", arCount.Load(), heuristic.ARCount)
}

// runTracking generates a temporally-coherent sequence, extracts storms
// per frame, links them into tracks, and prints the trajectory summary —
// the "AR tracks will shift" analysis from the paper's introduction.
func runTracking(h, w int, seed int64, frames, minPixels, top int) {
	seq, err := climate.NewSequence(climate.DefaultGenConfig(h, w, seed), frames)
	if err != nil {
		log.Fatal(err)
	}
	perFrame := make([][]*storms.Storm, frames)
	for f := 0; f < frames; f++ {
		s, err := seq.Frame(f)
		if err != nil {
			log.Fatal(err)
		}
		tcs, ars := storms.ExtractAll(s, minPixels)
		perFrame[f] = append(tcs, ars...)
	}
	tracks := storms.LinkTracks(perFrame, w, float64(h)/5)
	fmt.Printf("tracking: %d frames, %d×%d grid → %d tracks\n", frames, h, w, len(tracks))
	for i, tr := range tracks {
		if i >= top {
			fmt.Printf("  … %d more\n", len(tracks)-top)
			break
		}
		name := "TC"
		if tr.Class == climate.ClassAR {
			name = "AR"
		}
		dy, dx := tr.Displacement()
		fmt.Printf("  %s track: frames %d–%d (%d), drift (Δy %+.1f, Δx %+.1f), peak wind %.1f m/s\n",
			name, tr.Frames[0], tr.Frames[len(tr.Frames)-1], tr.Duration(), dy, dx, tr.PeakWind())
	}
}

// quartiles formats the 25/50/75th percentiles of a sample.
func quartiles(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	return fmt.Sprintf("%.1f / %.1f / %.1f", q(0.25), q(0.5), q(0.75))
}
