// Command servseg load-tests the batched tiled-inference serving stack: it
// builds (or quick-trains) a segmentation model, stands up an exaclim
// Server, drives it with concurrent Segment requests over synthetic CAM5
// snapshots, and prints a latency/throughput table — optionally against
// the serial single-goroutine Segment baseline.
//
// The adaptive-compute path is exercised with -precision (fp32, fp16,
// int8 kernel sets) and -early-exit; -calibrate derives the exit threshold
// from the snapshot set itself (the largest threshold that exits no
// storm-containing tile), so exited tiles are bit-identical to full
// decodes on that set.
//
// Usage:
//
//	servseg -requests 64 -concurrency 16 -replicas 1 -max-batch 8 -baseline
//	servseg -early-exit -calibrate -requests 256
//	servseg -precision int8 -baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/exaclim"
	"repro/internal/climate"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servseg: ")

	network := flag.String("network", "tiramisu", "registered network (tiramisu, deeplab)")
	tile := flag.Int("tile", 16, "model window / tile size")
	overlap := flag.Int("overlap", 2, "stitching overlap margin")
	height := flag.Int("height", 16, "request grid rows")
	width := flag.Int("width", 16, "request grid columns")
	snapshots := flag.Int("snapshots", 8, "distinct synthetic snapshots to rotate through")
	storms := flag.String("storms", "default", "snapshot storm density (default: the paper's class balance; sparse: 0–1 events per snapshot, mostly-background traffic)")
	seed := flag.Int64("seed", 7, "generator seed")
	trainSteps := flag.Int("train-steps", 0, "quick-train the model first (0 serves untrained weights)")

	replicas := flag.Int("replicas", 1, "replica workers")
	maxBatch := flag.Int("max-batch", 8, "tiles per executor run (cross-request)")
	queue := flag.Int("queue", 256, "admission queue depth (tiles)")
	deadline := flag.Duration("deadline", 200*time.Microsecond, "batch-fill deadline")
	precision := flag.String("precision", "fp32", "serving kernel set (fp32, fp16, int8)")
	earlyExit := flag.Bool("early-exit", false, "enable the early-exit background-tile path")
	exitThreshold := flag.Float64("exit-threshold", 0, "explicit exit threshold (with -early-exit, unless -calibrate)")
	calibrate := flag.Bool("calibrate", false, "calibrate the exit threshold on the snapshot set (implies -early-exit)")
	exitMargin := flag.Float64("exit-margin", 1, "calibration safety margin in (0, 1]")

	requests := flag.Int("requests", 64, "total requests to issue")
	concurrency := flag.Int("concurrency", 16, "concurrent client goroutines")
	baseline := flag.Bool("baseline", true, "also measure the serial single-goroutine FP32 full-decode baseline")
	flag.Parse()

	prec, err := parsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	if *calibrate {
		*earlyExit = true
	}

	model, err := buildModel(*network, *tile, *trainSteps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	gen := climate.DefaultGenConfig(*height, *width, *seed)
	switch *storms {
	case "default":
	case "sparse":
		gen.MinTCs, gen.MaxTCs = 0, 1
		gen.MinARs, gen.MaxARs = 0, 1
	default:
		log.Fatalf("unknown -storms %q (want default or sparse)", *storms)
	}
	ds := climate.NewDataset(gen, *snapshots)
	fields := make([]*tensor.Tensor, *snapshots)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}
	segCfg := exaclim.SegmentConfig{Overlap: *overlap, Precision: prec}
	baseCfg := exaclim.SegmentConfig{Overlap: *overlap} // FP32 full decode

	fmt.Printf("servseg: %s, window %d×%d, overlap %d, %d channels, precision %s\n",
		*network, *tile, *tile, *overlap, exaclim.NumChannels, prec)
	fmt.Printf("  %d requests over %d snapshots of %d×%d, concurrency %d\n",
		*requests, *snapshots, *height, *width, *concurrency)

	var serialRPS float64
	if *baseline {
		start := time.Now()
		for i := 0; i < *requests; i++ {
			if _, err := model.Segment(fields[i%len(fields)], baseCfg); err != nil {
				log.Fatal(err)
			}
		}
		el := time.Since(start)
		serialRPS = float64(*requests) / el.Seconds()
		fmt.Printf("  serial baseline: %.1f req/s (1 goroutine, FP32 full decode, %.1fms/req)\n",
			serialRPS, el.Seconds()*1e3/float64(*requests))
	}

	opts := []exaclim.ServerOption{
		exaclim.WithReplicas(*replicas),
		exaclim.WithMaxBatch(*maxBatch),
		exaclim.WithQueueDepth(*queue),
		exaclim.WithBatchDeadline(*deadline),
		exaclim.WithServeSegmentConfig(segCfg),
	}
	if *calibrate {
		calCfg := segCfg
		calCfg.MaxBatch = *maxBatch
		cal, err := model.CalibrateExit(fields, calCfg, *exitMargin)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  calibration: threshold %.6g over %d tiles (%d storm), predicted exit rate %.1f%%\n",
			cal.Threshold, cal.Tiles, cal.StormTiles, cal.ExitRate*100)
		opts = append(opts, exaclim.WithCalibratedExit(cal))
	} else if *earlyExit {
		opts = append(opts, exaclim.WithEarlyExit(*exitThreshold))
	}
	srv, err := exaclim.NewServer(model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, _, err := srv.Segment(context.Background(), fields[i%len(fields)]); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	rps := float64(*requests) / elapsed.Seconds()
	fmt.Printf("  serving: replicas=%d max-batch=%d queue=%d deadline=%v early-exit=%v\n",
		*replicas, *maxBatch, *queue, *deadline, *earlyExit)
	fmt.Printf("    throughput  %.1f req/s   %.1f tiles/s decoded", rps, float64(st.Tiles)/elapsed.Seconds())
	if serialRPS > 0 {
		fmt.Printf("   (%.2f× serial)", rps/serialRPS)
	}
	fmt.Println()
	fmt.Printf("    latency     p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		st.LatencyP50.Seconds()*1e3, st.LatencyP95.Seconds()*1e3, st.LatencyP99.Seconds()*1e3)
	fmt.Printf("    batching    mean batch %.2f over %d runs, queue peak %d\n",
		st.MeanBatch, st.Batches, st.QueueDepthPeak)
	if *earlyExit {
		fmt.Printf("    early exit  %.1f%% of tiles exited (%d of %d checked)  exit-check p50 %.2fms  decode p50 %.2fms\n",
			st.ExitRate*100, st.ExitedTiles, st.ExitChecks,
			st.ExitCheckP50.Seconds()*1e3, st.DecodeP50.Seconds()*1e3)
	}

	// Mask-parity audit against the FP32 full-decode reference: exact for
	// FP32 (+ calibrated early exit); a quantization-quality readout for
	// FP16/INT8.
	if *baseline {
		same := 0
		for _, f := range fields {
			want, err := model.Segment(f, baseCfg)
			if err != nil {
				log.Fatal(err)
			}
			got, _, err := srv.Segment(context.Background(), f)
			if err != nil {
				log.Fatal(err)
			}
			if equal(want.Data(), got.Data()) {
				same++
			}
		}
		fmt.Printf("    mask parity %d/%d snapshots bit-identical to FP32 full decode\n", same, len(fields))
	}
}

func parsePrecision(s string) (exaclim.Precision, error) {
	switch s {
	case "fp32":
		return exaclim.FP32, nil
	case "fp16":
		return exaclim.FP16, nil
	case "int8":
		return exaclim.INT8, nil
	}
	return exaclim.FP32, fmt.Errorf("unknown precision %q (want fp32, fp16, or int8)", s)
}

func equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// buildModel constructs (or quick-trains) the serving model at the tile
// window.
func buildModel(network string, tile, trainSteps int, seed int64) (*exaclim.Model, error) {
	if trainSteps <= 0 {
		return exaclim.BuildModel(network, exaclim.Tiny, exaclim.ModelConfig{
			Height: tile, Width: tile, Seed: seed,
		})
	}
	exp, err := exaclim.New(
		exaclim.WithNetwork(network, exaclim.Tiny),
		exaclim.WithSyntheticData(tile, tile, 32, seed+1),
		exaclim.WithSteps(trainSteps),
		exaclim.WithSeed(seed),
	)
	if err != nil {
		return nil, err
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}
