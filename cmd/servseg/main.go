// Command servseg load-tests the batched tiled-inference serving stack: it
// builds (or quick-trains) a segmentation model, stands up an exaclim
// Server, drives it with concurrent Segment requests over synthetic CAM5
// snapshots, and prints a latency/throughput table — optionally against
// the serial single-goroutine Segment baseline.
//
// Usage:
//
//	servseg -requests 64 -concurrency 16 -replicas 1 -max-batch 8 -baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/exaclim"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servseg: ")

	network := flag.String("network", "tiramisu", "registered network (tiramisu, deeplab)")
	tile := flag.Int("tile", 16, "model window / tile size")
	overlap := flag.Int("overlap", 2, "stitching overlap margin")
	height := flag.Int("height", 16, "request grid rows")
	width := flag.Int("width", 16, "request grid columns")
	snapshots := flag.Int("snapshots", 8, "distinct synthetic snapshots to rotate through")
	seed := flag.Int64("seed", 7, "generator seed")
	trainSteps := flag.Int("train-steps", 0, "quick-train the model first (0 serves untrained weights)")

	replicas := flag.Int("replicas", 1, "replica workers")
	maxBatch := flag.Int("max-batch", 8, "tiles per executor run (cross-request)")
	queue := flag.Int("queue", 256, "admission queue depth (tiles)")
	deadline := flag.Duration("deadline", 200*time.Microsecond, "batch-fill deadline")

	requests := flag.Int("requests", 64, "total requests to issue")
	concurrency := flag.Int("concurrency", 16, "concurrent client goroutines")
	baseline := flag.Bool("baseline", true, "also measure the serial single-goroutine Segment baseline")
	flag.Parse()

	model, err := buildModel(*network, *tile, *trainSteps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	ds := exaclim.SyntheticDataset(*height, *width, *snapshots, *seed)
	fields := make([]*tensor.Tensor, *snapshots)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}
	segCfg := exaclim.SegmentConfig{Overlap: *overlap}

	fmt.Printf("servseg: %s, window %d×%d, overlap %d, %d channels\n",
		*network, *tile, *tile, *overlap, exaclim.NumChannels)
	fmt.Printf("  %d requests over %d snapshots of %d×%d, concurrency %d\n",
		*requests, *snapshots, *height, *width, *concurrency)

	var serialRPS float64
	if *baseline {
		start := time.Now()
		for i := 0; i < *requests; i++ {
			if _, err := model.Segment(fields[i%len(fields)], segCfg); err != nil {
				log.Fatal(err)
			}
		}
		el := time.Since(start)
		serialRPS = float64(*requests) / el.Seconds()
		fmt.Printf("  serial baseline: %.1f req/s (1 goroutine, MaxBatch 1, %.1fms/req)\n",
			serialRPS, el.Seconds()*1e3/float64(*requests))
	}

	srv, err := exaclim.NewServer(model,
		exaclim.WithReplicas(*replicas),
		exaclim.WithMaxBatch(*maxBatch),
		exaclim.WithQueueDepth(*queue),
		exaclim.WithBatchDeadline(*deadline),
		exaclim.WithServeSegmentConfig(segCfg),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, _, err := srv.Segment(context.Background(), fields[i%len(fields)]); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	rps := float64(*requests) / elapsed.Seconds()
	fmt.Printf("  serving: replicas=%d max-batch=%d queue=%d deadline=%v\n",
		*replicas, *maxBatch, *queue, *deadline)
	fmt.Printf("    throughput  %.1f req/s   %.1f tiles/s", rps, float64(st.Tiles)/elapsed.Seconds())
	if serialRPS > 0 {
		fmt.Printf("   (%.2f× serial)", rps/serialRPS)
	}
	fmt.Println()
	fmt.Printf("    latency     p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		st.LatencyP50.Seconds()*1e3, st.LatencyP95.Seconds()*1e3, st.LatencyP99.Seconds()*1e3)
	fmt.Printf("    batching    mean batch %.2f over %d runs, queue peak %d\n",
		st.MeanBatch, st.Batches, st.QueueDepthPeak)
}

// buildModel constructs (or quick-trains) the serving model at the tile
// window.
func buildModel(network string, tile, trainSteps int, seed int64) (*exaclim.Model, error) {
	if trainSteps <= 0 {
		return exaclim.BuildModel(network, exaclim.Tiny, exaclim.ModelConfig{
			Height: tile, Width: tile, Seed: seed,
		})
	}
	exp, err := exaclim.New(
		exaclim.WithNetwork(network, exaclim.Tiny),
		exaclim.WithSyntheticData(tile, tile, 32, seed+1),
		exaclim.WithSteps(trainSteps),
		exaclim.WithSeed(seed),
	)
	if err != nil {
		return nil, err
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}
