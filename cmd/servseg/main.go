// Command servseg load-tests the batched tiled-inference serving stack: it
// builds (or quick-trains) a segmentation model, stands up an exaclim
// Server, drives it with concurrent Segment requests over synthetic CAM5
// snapshots, and prints a latency/throughput table — optionally against
// the serial single-goroutine Segment baseline.
//
// The adaptive-compute path is exercised with -precision (fp32, fp16,
// int8 kernel sets) and -early-exit; -calibrate derives the exit threshold
// from the snapshot set itself (the largest threshold that exits no
// storm-containing tile), so exited tiles are bit-identical to full
// decodes on that set.
//
// With -shards N the same load drives the sharded serving fleet instead:
// tile queues scatter across N simulated shard nodes (per-shard admission
// control, hash-affine routing, re-dispatch around dead shards) and the
// virtual-clock scaling figures are reported alongside the wall-clock
// ones. Adding -hotswap-dir runs the closed training→serving loop:
// a quick training run writes checkpoint snapshots into the directory
// while the load generator hammers the fleet, and each snapshot rolls in
// as a live no-drain weight hot-swap — the run fails if the serving
// version never advances or any request is dropped.
//
// Usage:
//
//	servseg -requests 64 -concurrency 16 -replicas 1 -max-batch 8 -baseline
//	servseg -early-exit -calibrate -requests 256
//	servseg -precision int8 -baseline
//	servseg -shards 4 -shard-replicas 2 -requests 256
//	servseg -shards 4 -hotswap-dir /tmp/ckpts -hotswap-steps 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/exaclim"
	"repro/internal/climate"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servseg: ")

	network := flag.String("network", "tiramisu", "registered network (tiramisu, deeplab)")
	tile := flag.Int("tile", 16, "model window / tile size")
	overlap := flag.Int("overlap", 2, "stitching overlap margin")
	height := flag.Int("height", 16, "request grid rows")
	width := flag.Int("width", 16, "request grid columns")
	snapshots := flag.Int("snapshots", 8, "distinct synthetic snapshots to rotate through")
	storms := flag.String("storms", "default", "snapshot storm density (default: the paper's class balance; sparse: 0–1 events per snapshot, mostly-background traffic)")
	seed := flag.Int64("seed", 7, "generator seed")
	trainSteps := flag.Int("train-steps", 0, "quick-train the model first (0 serves untrained weights)")

	replicas := flag.Int("replicas", 1, "replica workers")
	maxBatch := flag.Int("max-batch", 8, "tiles per executor run (cross-request)")
	queue := flag.Int("queue", 256, "admission queue depth (tiles)")
	deadline := flag.Duration("deadline", 200*time.Microsecond, "batch-fill deadline")
	precision := flag.String("precision", "fp32", "serving kernel set (fp32, fp16, int8)")
	earlyExit := flag.Bool("early-exit", false, "enable the early-exit background-tile path")
	exitThreshold := flag.Float64("exit-threshold", 0, "explicit exit threshold (with -early-exit, unless -calibrate)")
	calibrate := flag.Bool("calibrate", false, "calibrate the exit threshold on the snapshot set (implies -early-exit)")
	exitMargin := flag.Float64("exit-margin", 1, "calibration safety margin in (0, 1]")

	shards := flag.Int("shards", 0, "serve through the sharded fleet with this many shard nodes (0 = single-process server)")
	shardReplicas := flag.Int("shard-replicas", 1, "replica engines per shard (fleet mode)")
	admit := flag.Int("admit", 0, "per-shard outstanding-tile admission bound (fleet mode, 0 = 4×max-batch)")
	hotswapDir := flag.String("hotswap-dir", "", "watch this checkpoint directory and hot-swap new snapshots while serving (fleet mode)")
	hotswapSteps := flag.Int("hotswap-steps", 3, "with -hotswap-dir: quick-train this many steps into the directory during the load run")

	requests := flag.Int("requests", 64, "total requests to issue")
	concurrency := flag.Int("concurrency", 16, "concurrent client goroutines")
	baseline := flag.Bool("baseline", true, "also measure the serial single-goroutine FP32 full-decode baseline")
	flag.Parse()

	prec, err := parsePrecision(*precision)
	if err != nil {
		log.Fatal(err)
	}
	if *calibrate {
		*earlyExit = true
	}

	model, err := buildModel(*network, *tile, *trainSteps, *seed)
	if err != nil {
		log.Fatal(err)
	}
	gen := climate.DefaultGenConfig(*height, *width, *seed)
	switch *storms {
	case "default":
	case "sparse":
		gen.MinTCs, gen.MaxTCs = 0, 1
		gen.MinARs, gen.MaxARs = 0, 1
	default:
		log.Fatalf("unknown -storms %q (want default or sparse)", *storms)
	}
	ds := climate.NewDataset(gen, *snapshots)
	fields := make([]*tensor.Tensor, *snapshots)
	for i := range fields {
		fields[i] = ds.Sample(i).Fields
	}
	segCfg := exaclim.SegmentConfig{Overlap: *overlap, Precision: prec}
	baseCfg := exaclim.SegmentConfig{Overlap: *overlap} // FP32 full decode

	fmt.Printf("servseg: %s, window %d×%d, overlap %d, %d channels, precision %s\n",
		*network, *tile, *tile, *overlap, exaclim.NumChannels, prec)
	fmt.Printf("  %d requests over %d snapshots of %d×%d, concurrency %d\n",
		*requests, *snapshots, *height, *width, *concurrency)

	var serialRPS float64
	if *baseline {
		start := time.Now()
		for i := 0; i < *requests; i++ {
			if _, err := model.Segment(fields[i%len(fields)], baseCfg); err != nil {
				log.Fatal(err)
			}
		}
		el := time.Since(start)
		serialRPS = float64(*requests) / el.Seconds()
		fmt.Printf("  serial baseline: %.1f req/s (1 goroutine, FP32 full decode, %.1fms/req)\n",
			serialRPS, el.Seconds()*1e3/float64(*requests))
	}

	if *shards > 0 {
		runFleet(model, fields, fleetRun{
			network: *network, tile: *tile, seed: *seed,
			shards: *shards, shardReplicas: *shardReplicas, admit: *admit,
			maxBatch: *maxBatch, segment: segCfg, baseCfg: baseCfg,
			earlyExit: *earlyExit, exitThreshold: *exitThreshold,
			requests: *requests, concurrency: *concurrency,
			baseline: *baseline, serialRPS: serialRPS,
			hotswapDir: *hotswapDir, hotswapSteps: *hotswapSteps,
		})
		return
	}

	opts := []exaclim.ServerOption{
		exaclim.WithReplicas(*replicas),
		exaclim.WithMaxBatch(*maxBatch),
		exaclim.WithQueueDepth(*queue),
		exaclim.WithBatchDeadline(*deadline),
		exaclim.WithServeSegmentConfig(segCfg),
	}
	if *calibrate {
		calCfg := segCfg
		calCfg.MaxBatch = *maxBatch
		cal, err := model.CalibrateExit(fields, calCfg, *exitMargin)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  calibration: threshold %.6g over %d tiles (%d storm), predicted exit rate %.1f%%\n",
			cal.Threshold, cal.Tiles, cal.StormTiles, cal.ExitRate*100)
		opts = append(opts, exaclim.WithCalibratedExit(cal))
	} else if *earlyExit {
		opts = append(opts, exaclim.WithEarlyExit(*exitThreshold))
	}
	srv, err := exaclim.NewServer(model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, _, err := srv.Segment(context.Background(), fields[i%len(fields)]); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	rps := float64(*requests) / elapsed.Seconds()
	fmt.Printf("  serving: replicas=%d max-batch=%d queue=%d deadline=%v early-exit=%v\n",
		*replicas, *maxBatch, *queue, *deadline, *earlyExit)
	fmt.Printf("    throughput  %.1f req/s   %.1f tiles/s decoded", rps, float64(st.Tiles)/elapsed.Seconds())
	if serialRPS > 0 {
		fmt.Printf("   (%.2f× serial)", rps/serialRPS)
	}
	fmt.Println()
	fmt.Printf("    latency     p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		st.LatencyP50.Seconds()*1e3, st.LatencyP95.Seconds()*1e3, st.LatencyP99.Seconds()*1e3)
	fmt.Printf("    batching    mean batch %.2f over %d runs, queue peak %d\n",
		st.MeanBatch, st.Batches, st.QueueDepthPeak)
	if *earlyExit {
		fmt.Printf("    early exit  %.1f%% of tiles exited (%d of %d checked)  exit-check p50 %.2fms  decode p50 %.2fms\n",
			st.ExitRate*100, st.ExitedTiles, st.ExitChecks,
			st.ExitCheckP50.Seconds()*1e3, st.DecodeP50.Seconds()*1e3)
	}

	// Mask-parity audit against the FP32 full-decode reference: exact for
	// FP32 (+ calibrated early exit); a quantization-quality readout for
	// FP16/INT8.
	if *baseline {
		same := 0
		for _, f := range fields {
			want, err := model.Segment(f, baseCfg)
			if err != nil {
				log.Fatal(err)
			}
			got, _, err := srv.Segment(context.Background(), f)
			if err != nil {
				log.Fatal(err)
			}
			if equal(want.Data(), got.Data()) {
				same++
			}
		}
		fmt.Printf("    mask parity %d/%d snapshots bit-identical to FP32 full decode\n", same, len(fields))
	}
}

func parsePrecision(s string) (exaclim.Precision, error) {
	switch s {
	case "fp32":
		return exaclim.FP32, nil
	case "fp16":
		return exaclim.FP16, nil
	case "int8":
		return exaclim.INT8, nil
	}
	return exaclim.FP32, fmt.Errorf("unknown precision %q (want fp32, fp16, or int8)", s)
}

func equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// fleetRun bundles the fleet-mode parameters.
type fleetRun struct {
	network       string
	tile          int
	seed          int64
	shards        int
	shardReplicas int
	admit         int
	maxBatch      int
	segment       exaclim.SegmentConfig
	baseCfg       exaclim.SegmentConfig
	earlyExit     bool
	exitThreshold float64
	requests      int
	concurrency   int
	baseline      bool
	serialRPS     float64
	hotswapDir    string
	hotswapSteps  int
}

// runFleet drives the sharded serving fleet with the same load generator
// as the single-process path, optionally hot-swapping checkpoints written
// by a concurrent training run, and reports wall-clock and virtual-clock
// figures.
func runFleet(model *exaclim.Model, fields []*tensor.Tensor, r fleetRun) {
	opts := []exaclim.FleetOption{
		exaclim.WithShards(r.shards),
		exaclim.WithShardReplicas(r.shardReplicas),
		exaclim.WithFleetMaxBatch(r.maxBatch),
		exaclim.WithFleetSegmentConfig(r.segment),
	}
	if r.admit > 0 {
		opts = append(opts, exaclim.WithAdmission(r.admit))
	}
	if r.earlyExit {
		opts = append(opts, exaclim.WithFleetEarlyExit(r.exitThreshold))
	}
	if r.hotswapDir != "" {
		opts = append(opts, exaclim.WithHotSwap(r.hotswapDir, 2*time.Millisecond))
	}
	f, err := exaclim.NewFleet(model, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// With a hot-swap directory, train concurrently with the load run so
	// the watcher rolls real snapshots in mid-traffic.
	trained := make(chan error, 1)
	if r.hotswapDir != "" {
		go func() {
			exp, err := exaclim.New(
				exaclim.WithNetwork(r.network, exaclim.Tiny),
				exaclim.WithSyntheticData(r.tile, r.tile, 16, r.seed+2),
				exaclim.WithSteps(r.hotswapSteps),
				exaclim.WithSeed(r.seed),
				exaclim.WithCheckpointDir(r.hotswapDir),
				exaclim.WithCheckpointEvery(r.hotswapSteps),
			)
			if err == nil {
				_, err = exp.Run(context.Background())
			}
			trained <- err
		}()
	}

	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for c := 0; c < r.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if _, _, err := f.Segment(context.Background(), fields[i%len(fields)]); err != nil {
					log.Fatalf("request dropped: %v", err)
				}
			}
		}()
	}
	for i := 0; i < r.requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	if r.hotswapDir != "" {
		if err := <-trained; err != nil {
			log.Fatalf("hot-swap training run: %v", err)
		}
		// The swap must land: keep a trickle of traffic flowing until the
		// watcher has rolled the snapshot in.
		deadline := time.Now().Add(30 * time.Second)
		for f.Stats().Version == 0 {
			if time.Now().After(deadline) {
				log.Fatal("hot swap never advanced the serving version")
			}
			if _, _, err := f.Segment(context.Background(), fields[0]); err != nil {
				log.Fatalf("request dropped during hot swap: %v", err)
			}
		}
		if _, stat, err := f.Segment(context.Background(), fields[0]); err != nil || stat.Version == 0 {
			log.Fatalf("post-swap request: version %d, err %v", stat.Version, err)
		}
	}

	st := f.Stats()
	rps := float64(r.requests) / elapsed.Seconds()
	fmt.Printf("  fleet: shards=%d shard-replicas=%d max-batch=%d admit=%d early-exit=%v\n",
		r.shards, r.shardReplicas, r.maxBatch, r.admit, r.earlyExit)
	fmt.Printf("    wall clock  %.1f req/s", rps)
	if r.serialRPS > 0 {
		fmt.Printf("   (%.2f× serial)", rps/r.serialRPS)
	}
	fmt.Println()
	fmt.Printf("    virtual     %.1f req/s over %.3fs fleet makespan (serving-fabric network model)\n",
		st.VirtualReqPerSec, st.VirtualSeconds)
	fmt.Printf("    latency     p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		st.LatencyP50.Seconds()*1e3, st.LatencyP95.Seconds()*1e3, st.LatencyP99.Seconds()*1e3)
	fmt.Printf("    resilience  %d tiles re-dispatched, %d dead shards, %d failed requests\n",
		st.Redispatched, st.DeadShards, st.Failed)
	if st.Swaps > 0 {
		fmt.Printf("    hot swap    %d swaps, serving version %d (step %d), swap-window p99 %.1fms over %d requests\n",
			st.Swaps, st.Version, st.Step, st.SwapWindowP99.Seconds()*1e3, st.SwapWindowRequests)
	}

	if r.baseline && r.hotswapDir == "" {
		// Mask-parity audit (skipped after a hot swap: the serving weights
		// have legitimately moved past the local model's).
		same := 0
		for _, fl := range fields {
			want, err := model.Segment(fl, r.baseCfg)
			if err != nil {
				log.Fatal(err)
			}
			got, _, err := f.Segment(context.Background(), fl)
			if err != nil {
				log.Fatal(err)
			}
			if equal(want.Data(), got.Data()) {
				same++
			}
		}
		fmt.Printf("    mask parity %d/%d snapshots bit-identical to FP32 full decode\n", same, len(fields))
	}
}

// buildModel constructs (or quick-trains) the serving model at the tile
// window.
func buildModel(network string, tile, trainSteps int, seed int64) (*exaclim.Model, error) {
	if trainSteps <= 0 {
		return exaclim.BuildModel(network, exaclim.Tiny, exaclim.ModelConfig{
			Height: tile, Width: tile, Seed: seed,
		})
	}
	exp, err := exaclim.New(
		exaclim.WithNetwork(network, exaclim.Tiny),
		exaclim.WithSyntheticData(tile, tile, 32, seed+1),
		exaclim.WithSteps(trainSteps),
		exaclim.WithSeed(seed),
	)
	if err != nil {
		return nil, err
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}
