// Command segviz produces the paper's Fig 7 artifacts: a synthetic climate
// snapshot's integrated-water-vapor field rendered with the white→yellow
// colormap, the storm masks (TCs red, ARs blue) overlaid, and — when
// -train is set — a comparison panel of model predictions against the
// heuristic labels with the label boundaries outlined in black.
//
// Usage:
//
//	segviz -out ./fig7 -height 96 -width 144 -train -steps 60
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/exaclim"
	"repro/internal/climate"
	"repro/internal/tensor"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("segviz: ")

	out := flag.String("out", "fig7", "output directory for PNGs")
	height := flag.Int("height", 96, "grid rows")
	width := flag.Int("width", 144, "grid columns")
	seed := flag.Int64("seed", 7, "generator seed")
	train := flag.Bool("train", false, "train a model and render its predictions")
	steps := flag.Int("steps", 60, "training steps when -train is set")
	tile := flag.Int("tile", 24, "inference tile size when -train is set")
	maxBatch := flag.Int("max-batch", 8, "tiles per executor run when segmenting")
	opacity := flag.Float64("opacity", 0.65, "mask overlay opacity")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	ds := exaclim.SyntheticDataset(*height, *width, 8, *seed)
	s := ds.Sample(0)
	iwv := tensor.FromSlice(tensor.Shape{*height, *width},
		s.Fields.Data()[climate.ChTMQ*(*height)*(*width):(climate.ChTMQ+1)*(*height)*(*width)])

	save := func(name string, field, labels *tensor.Tensor) {
		img, err := viz.Overlay(field, labels, *opacity)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, name)
		if err := viz.SavePNG(path, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	// Fig 7a analogue: IWV field with heuristic-label masks.
	fimg, err := viz.FieldImage(iwv)
	if err != nil {
		log.Fatal(err)
	}
	if err := viz.SavePNG(filepath.Join(*out, "iwv.png"), fimg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(*out, "iwv.png"))
	save("labels_overlay.png", iwv, s.Labels)

	if !*train {
		return
	}

	// Train a small model on tile-sized crops, then tile-segment the full
	// snapshot and render the Fig 7b comparison.
	th := *tile
	exp, err := exaclim.New(
		exaclim.WithNetwork("tiramisu", exaclim.Tiny),
		exaclim.WithSyntheticData(th, th, 32, *seed+1),
		exaclim.WithModelConfig(exaclim.ModelConfig{Seed: 7}),
		exaclim.WithOptimizer("adam"),
		exaclim.WithLR(3e-3),
		exaclim.WithWeighting("sqrt"),
		exaclim.WithRanks(2, 1),
		exaclim.WithSteps(*steps),
		exaclim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %d steps…\n", *steps)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  loss %.1f → %.1f\n", res.History[0].Loss, res.FinalLoss)

	// Segment through the batched serving stack — the deployment path —
	// and report its per-request serving record.
	srv, err := exaclim.NewServer(res.Model,
		exaclim.WithMaxBatch(*maxBatch),
		exaclim.WithServeSegmentConfig(exaclim.SegmentConfig{Overlap: 3}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	pred, stat, err := srv.Segment(context.Background(), s.Fields)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented %d tiles in %.1fms (mean batch %.1f)\n",
		stat.Tiles, stat.Latency.Seconds()*1e3, stat.MeanBatch)
	save("predictions_overlay.png", iwv, pred)
	cmp, err := viz.Comparison(iwv, pred, s.Labels, *opacity)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*out, "comparison.png")
	if err := viz.SavePNG(path, cmp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (predictions in color, label boundaries in black)\n", path)
}
