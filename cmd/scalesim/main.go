// Command scalesim regenerates the paper's scaling results: the weak-
// scaling curves of Figure 4 (Summit and Piz Daint, both networks, FP16
// and FP32, lag 0 vs lag 1), the staged-vs-global-storage comparison of
// Figure 5, and the Section V-A1 staging-time table.
//
// Usage:
//
//	scalesim -figure 4a   # Tiramisu weak scaling
//	scalesim -figure 4b   # DeepLabv3+ weak scaling
//	scalesim -figure 5    # input-location comparison on Piz Daint
//	scalesim -figure stage
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/exaclim"
	"repro/internal/graph"
	"repro/internal/perfmodel"
	"repro/internal/stagefs"
	"repro/internal/staging"
)

func analysis(network string, p exaclim.Precision, batch, channels int) *graph.Analysis {
	a, err := exaclim.PaperAnalysis(network, p, batch, channels)
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func summitConfig(network string, p exaclim.Precision, lag int) perfmodel.ScalingConfig {
	batch := 1
	if p == exaclim.FP16 {
		batch = 2
	}
	a := analysis(network, p, batch, 16)
	grad := 44.3e6
	if network == "tiramisu" {
		grad = 7.2e6
	}
	return perfmodel.ScalingConfig{
		Machine: perfmodel.Summit(), Analysis: a, Precision: p,
		GradBytes: grad * float64(p.Bytes()), NumTensors: 110, Lag: lag,
		HierarchicalCtl: true, Staged: true,
	}
}

func pizDaintConfig(staged bool) perfmodel.ScalingConfig {
	a := analysis("tiramisu", exaclim.FP32, 1, 4)
	return perfmodel.ScalingConfig{
		Machine: perfmodel.PizDaint(), Analysis: a, Precision: exaclim.FP32,
		GradBytes: 7.2e6 * 4, NumTensors: 110, Lag: 1,
		HierarchicalCtl: true, Staged: staged,
		FS: stagefs.PizDaintLustre(), SampleBytes: 16 * 768 * 1152 * 4,
	}
}

func printSweep(label string, s perfmodel.ScalingConfig, counts []int) {
	fmt.Printf("\n%s\n", label)
	fmt.Printf("%8s %14s %12s %12s %8s\n", "GPUs", "images/s", "PF/s", "peak PF/s", "eff%")
	single := s.At(1)
	for _, n := range counts {
		p := s.At(n)
		ideal := single.ImagesPerS * float64(n)
		fmt.Printf("%8d %14.1f %12.2f %12.2f %7.1f%%   (ideal %.1f img/s)\n",
			n, p.ImagesPerS, p.PFps, p.PeakPFps, p.Efficiency*100, ideal)
	}
}

func main() {
	log.SetFlags(0)
	figure := flag.String("figure", "4b", "4a, 4b, 5, or stage")
	flag.Parse()

	summitCounts := []int{1, 6, 96, 384, 1536, 6144, 24576, 27360}
	daintCounts := []int{1, 16, 128, 512, 1024, 2048, 5300}

	switch *figure {
	case "4a":
		printSweep("Fig 4a — Tiramisu, Summit FP16 (lag 1)",
			summitConfig("tiramisu", exaclim.FP16, 1), summitCounts)
		printSweep("Fig 4a — Tiramisu, Summit FP16 (lag 0)",
			summitConfig("tiramisu", exaclim.FP16, 0), summitCounts)
		printSweep("Fig 4a — Tiramisu, Summit FP32 (lag 1)",
			summitConfig("tiramisu", exaclim.FP32, 1), summitCounts)
		printSweep("Fig 4a — Tiramisu, Piz Daint FP32 (staged)",
			pizDaintConfig(true), daintCounts)
	case "4b":
		printSweep("Fig 4b — DeepLabv3+, Summit FP16 (lag 1)",
			summitConfig("deeplab", exaclim.FP16, 1), summitCounts)
		printSweep("Fig 4b — DeepLabv3+, Summit FP16 (lag 0)",
			summitConfig("deeplab", exaclim.FP16, 0), summitCounts)
		printSweep("Fig 4b — DeepLabv3+, Summit FP32 (lag 1)",
			summitConfig("deeplab", exaclim.FP32, 1), summitCounts)
	case "5":
		staged := pizDaintConfig(true)
		global := pizDaintConfig(false)
		fmt.Println("\nFig 5 — Piz Daint input location (Tiramisu FP32)")
		fmt.Printf("%8s %16s %16s %10s\n", "GPUs", "local img/s", "global img/s", "penalty")
		for _, n := range daintCounts {
			ps, pg := staged.At(n), global.At(n)
			fmt.Printf("%8d %16.1f %16.1f %9.1f%%\n",
				n, ps.ImagesPerS, pg.ImagesPerS, (1-pg.ImagesPerS/ps.ImagesPerS)*100)
		}
	case "stage":
		nvme := stagefs.SummitNVMe()
		m := staging.AnalyticModel{
			Cfg: staging.Config{
				DatasetSamples: 63000, SamplesPerNode: 1500,
				SampleBytes: 56 << 20, ReadThreads: 8,
				FS: stagefs.SummitGPFS(),
			},
			InterconnectBW: 12.5e9,
			Local:          &nvme,
		}
		fmt.Println("\nSection V-A1 — staging time (Summit, 3.5 TB dataset)")
		for _, nodes := range []int{256, 1024, 4500} {
			fmt.Printf("  %s\n", m.Describe(nodes))
		}
		fs := stagefs.SummitGPFS()
		fmt.Printf("  read threads: 1 → %.2f GB/s, 8 → %.2f GB/s (paper: 1.79 → 11.98)\n",
			fs.NodeReadBW(1)/1e9, fs.NodeReadBW(8)/1e9)
	default:
		log.Fatalf("unknown figure %q", *figure)
	}
}
