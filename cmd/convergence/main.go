// Command convergence regenerates the data behind the paper's Fig 6: real
// distributed training runs at several concurrencies and precisions, with
// loss recorded against virtual wall time (per-step GPU compute charged on
// the ranks' virtual clocks). The output is a TSV that plots directly —
// one row per smoothed-loss sample, one series per configuration — plus the
// paper's cube-law learning-rate scaling across concurrencies.
//
// Usage:
//
//	convergence -steps 40 -out fig6.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/perfmodel"
)

type series struct {
	name string
	prec graph.Precision
	lag  int
	rank int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("convergence: ")

	steps := flag.Int("steps", 40, "training steps per configuration")
	size := flag.Int("size", 16, "input height/width")
	out := flag.String("out", "", "TSV output path (default stdout)")
	window := flag.Int("window", 10, "moving-average window (the paper uses 10)")
	stepSeconds := flag.Float64("step-seconds", 0.5, "virtual GPU seconds charged per step")
	flag.Parse()

	configs := []series{
		{"fp32-lag0-x4", graph.FP32, 0, 4},
		{"fp16-lag0-x4", graph.FP16, 0, 4},
		{"fp16-lag1-x4", graph.FP16, 1, 4},
		{"fp32-lag0-x8", graph.FP32, 0, 8},
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintln(w, "series\tstep\tvirtual_seconds\tloss\tsmoothed_loss")
	for _, s := range configs {
		// The paper's LR(n) = 1e-4·(n/384)³ law, rescaled to these tiny
		// concurrencies via the same cubic shape anchored at 4 ranks.
		lr := 3e-3 * perfmodel.PaperLR(384*s.rank/4) / perfmodel.PaperLR(384)
		if s.lag == 1 {
			lr /= 3 // stale gradients take a smaller step (§V-B4)
		}
		cfg := core.Config{
			BuildNet: func() (*models.Network, error) {
				return models.BuildTiramisu(models.TinyTiramisu(models.Config{
					BatchSize: 1, InChannels: climate.NumChannels,
					NumClasses: climate.NumClasses,
					Height:     *size, Width: *size, Seed: 7,
				}))
			},
			Precision:          s.prec,
			Optimizer:          core.Adam,
			LR:                 lr,
			LRSchedule:         opt.PolynomialDecay(lr, lr/10, *steps, 1),
			GradientLag:        s.lag,
			Weighting:          loss.InverseSqrtFrequency,
			Dataset:            climate.NewDataset(climate.DefaultGenConfig(*size, *size, 42), 32),
			Ranks:              s.rank,
			Steps:              *steps,
			Seed:               5,
			StepComputeSeconds: *stepSeconds,
		}
		res, err := core.Train(cfg)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		smoothed := core.SmoothedLoss(res.History, *window)
		for i, h := range res.History {
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.4f\t%.4f\n",
				s.name, h.Step, h.VirtualTime, h.Loss, smoothed[i])
		}
		log.Printf("%s: lr=%.2e loss %.1f → %.1f (%d ranks)",
			s.name, lr, res.History[0].Loss, res.FinalLoss, s.rank)
	}
}
