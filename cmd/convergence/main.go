// Command convergence regenerates the data behind the paper's Fig 6: real
// distributed training runs at several concurrencies and precisions, with
// loss recorded against virtual wall time (per-step GPU compute charged on
// the ranks' virtual clocks). The output is a TSV that plots directly —
// one row per smoothed-loss sample, one series per configuration — plus the
// paper's cube-law learning-rate scaling across concurrencies.
//
// Usage:
//
//	convergence -steps 40 -out fig6.tsv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/exaclim"
	"repro/internal/perfmodel"
)

type series struct {
	name string
	prec exaclim.Precision
	lag  int
	rank int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("convergence: ")

	steps := flag.Int("steps", 40, "training steps per configuration")
	size := flag.Int("size", 16, "input height/width")
	out := flag.String("out", "", "TSV output path (default stdout)")
	window := flag.Int("window", 10, "moving-average window (the paper uses 10)")
	stepSeconds := flag.Float64("step-seconds", 0.5, "virtual GPU seconds charged per step")
	flag.Parse()

	configs := []series{
		{"fp32-lag0-x4", exaclim.FP32, 0, 4},
		{"fp16-lag0-x4", exaclim.FP16, 0, 4},
		{"fp16-lag1-x4", exaclim.FP16, 1, 4},
		{"fp32-lag0-x8", exaclim.FP32, 0, 8},
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintln(w, "series\tstep\tvirtual_seconds\tloss\tsmoothed_loss")
	for _, s := range configs {
		// The paper's LR(n) = 1e-4·(n/384)³ law, rescaled to these tiny
		// concurrencies via the same cubic shape anchored at 4 ranks.
		lr := 3e-3 * perfmodel.PaperLR(384*s.rank/4) / perfmodel.PaperLR(384)
		if s.lag == 1 {
			lr /= 3 // stale gradients take a smaller step (§V-B4)
		}
		exp, err := exaclim.New(
			exaclim.WithNetwork("tiramisu", exaclim.Tiny),
			exaclim.WithSyntheticData(*size, *size, 32, 42),
			exaclim.WithModelConfig(exaclim.ModelConfig{Seed: 7}),
			exaclim.WithPrecision(s.prec),
			exaclim.WithOptimizer("adam"),
			exaclim.WithLR(lr),
			exaclim.WithPolynomialDecay(lr/10, 1),
			exaclim.WithGradientLag(s.lag),
			exaclim.WithWeighting("sqrt"),
			exaclim.WithRanks(s.rank, 1),
			exaclim.WithSteps(*steps),
			exaclim.WithSeed(5),
			exaclim.WithStepComputeSeconds(*stepSeconds),
		)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		res, err := exp.Run(context.Background())
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		smoothed := res.SmoothedLoss(*window)
		for i, h := range res.History {
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.4f\t%.4f\n",
				s.name, h.Step, h.VirtualTime, h.Loss, smoothed[i])
		}
		log.Printf("%s: lr=%.2e loss %.1f → %.1f (%d ranks)",
			s.name, lr, res.History[0].Loss, res.FinalLoss, s.rank)
	}
}
