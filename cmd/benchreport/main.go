// Command benchreport converts `go test -bench` output into a
// machine-readable JSON benchmark table, so the performance trajectory of
// the repo can be tracked across PRs (BENCH_<n>.json files at the root).
//
// Usage:
//
//	go test -bench 'Fig2|Fig3' -benchtime 1x -run '^$' . | \
//	    go run ./cmd/benchreport -label "PR 2" -out BENCH_2.json
//
// Each benchmark line is parsed into its name, iteration count, ns/op, and
// every custom metric (`b.ReportMetric` units like steps/s, %peak, B/op).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label      string      `json:"label,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Notes      []string    `json:"notes,omitempty"`
}

func main() {
	in := flag.String("in", "-", "benchmark output file ('-' = stdin)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	var notes multiFlag
	flag.Var(&notes, "note", "free-form note line (repeatable)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	report := Report{Label: *label, Notes: notes}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d benchmarks to %s\n",
		len(report.Benchmarks), *out)
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName/sub-8   123   45678 ns/op   9.1 steps/s   64 B/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS suffix of a benchmark
// name, if present, so names stay stable across machines.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

// multiFlag collects repeated -note flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
