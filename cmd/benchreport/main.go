// Command benchreport converts `go test -bench` output into a
// machine-readable JSON benchmark table, so the performance trajectory of
// the repo can be tracked across PRs (BENCH_<n>.json files at the root).
//
// Usage:
//
//	go test -bench 'Fig2|Fig3' -benchtime 1x -run '^$' . | \
//	    go run ./cmd/benchreport -label "PR 2" -out BENCH_2.json
//
// Each benchmark line is parsed into its name, iteration count, ns/op, and
// every custom metric (`b.ReportMetric` units like steps/s, %peak, B/op).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// ServingSummary surfaces the serving SLO quantities (PR 4's acceptance
// numbers) at the top of the report, extracted from the BenchmarkServing
// metrics: requests/s through the batched server, the serial single-tile
// baseline, their ratio, and the tail latency.
type ServingSummary struct {
	RequestsPerSec  float64 `json:"requests_per_sec"`
	SerialReqPerSec float64 `json:"serial_requests_per_sec,omitempty"`
	BatchSpeedup    float64 `json:"batch_speedup,omitempty"`
	P50ms           float64 `json:"p50_ms,omitempty"`
	P99ms           float64 `json:"p99_ms,omitempty"`
	MeanBatch       float64 `json:"mean_batch,omitempty"`
}

// AdaptiveSummary surfaces the adaptive-compute serving acceptance numbers
// (PR 7) from the BenchmarkAdaptiveServing metrics: adaptive and FP32
// full-decode throughput on sparse-storm traffic, their ratio (the ≥2×
// acceptance quantity), the exit path's tile resolution rate and relative
// micro-batch cost, and the reduced-precision kernels' measured relative
// logit error (the contract bounds are 2e-3 FP16, 6e-2 INT8).
type AdaptiveSummary struct {
	RequestsPerSec  float64 `json:"requests_per_sec"`
	FP32ReqPerSec   float64 `json:"fp32_requests_per_sec,omitempty"`
	Speedup         float64 `json:"adaptive_speedup,omitempty"`
	ExitRate        float64 `json:"exit_rate,omitempty"`
	ExitCostRatio   float64 `json:"exit_cost_ratio,omitempty"`
	P50ms           float64 `json:"p50_ms,omitempty"`
	P99ms           float64 `json:"p99_ms,omitempty"`
	FP16LogitRelErr float64 `json:"fp16_logit_rel_err,omitempty"`
	INT8LogitRelErr float64 `json:"int8_logit_rel_err,omitempty"`
}

// StreamingSummary surfaces the stormwatch pipeline's acceptance numbers
// from the BenchmarkStormwatch metrics: sustained frames/s under bursty
// overload, the drop and degrade rates the backpressure policy produced,
// and the p99 source→tracker frame latency.
type StreamingSummary struct {
	FramesPerSec    float64 `json:"frames_per_sec"`
	DroppedPercent  float64 `json:"dropped_percent"`
	DegradedPercent float64 `json:"degraded_percent"`
	P99FrameMs      float64 `json:"p99_frame_ms,omitempty"`
}

// FleetSummary surfaces the sharded-serving acceptance numbers (PR 10)
// from the BenchmarkFleetServing metrics: virtual-clock throughput at 4
// shards and at the 1-shard baseline, their ratio (the ≥2.5× acceptance
// quantity), this host's wall throughput, the hot-swap figures (completed
// swaps, swap-window p99, dropped requests — the guarantee is zero), and
// the chaos run's tile re-dispatch rate around a killed shard.
type FleetSummary struct {
	VirtualReqPerSec      float64 `json:"virtual_requests_per_sec"`
	OneShardVirtualReqSec float64 `json:"one_shard_virtual_requests_per_sec,omitempty"`
	ShardSpeedup          float64 `json:"shard_speedup,omitempty"`
	RequestsPerSec        float64 `json:"requests_per_sec,omitempty"`
	Swaps                 float64 `json:"swaps,omitempty"`
	SwapP99ms             float64 `json:"swap_window_p99_ms,omitempty"`
	SwapDrops             float64 `json:"swap_drops"`
	RedispatchedPercent   float64 `json:"redispatched_percent"`
}

// KernelSummary surfaces the SIMD execution layer's acceptance numbers
// (PR 9) from the BenchmarkKernel* metrics: the measured FMA peak
// (BenchmarkKernelPeak's synthetic 12-chain probe), the best delivered
// single-threaded GEMM GFLOP/s per ISA, their ratio (the ≥2× acceptance
// quantity), and the AVX2 kernels' fraction of measured peak. ISA is the
// fastest kernel set the host ran.
type KernelSummary struct {
	ISA            string  `json:"isa"`
	FMAPeakGFLOPs  float64 `json:"fma_peak_gflops,omitempty"`
	AVX2GemmGFLOPs float64 `json:"avx2_gemm_gflops,omitempty"`
	ScalarGFLOPs   float64 `json:"scalar_gemm_gflops,omitempty"`
	SIMDSpeedup    float64 `json:"simd_speedup,omitempty"`
	PctPeak        float64 `json:"pct_peak,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label      string            `json:"label,omitempty"`
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Kernel     *KernelSummary    `json:"kernel,omitempty"`
	Serving    *ServingSummary   `json:"serving,omitempty"`
	Adaptive   *AdaptiveSummary  `json:"adaptive,omitempty"`
	Fleet      *FleetSummary     `json:"fleet,omitempty"`
	Streaming  *StreamingSummary `json:"streaming,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Notes      []string          `json:"notes,omitempty"`
}

func main() {
	var ins multiFlag
	flag.Var(&ins, "in", "benchmark output file ('-' = stdin; repeatable, results are merged)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report")
	var notes multiFlag
	flag.Var(&notes, "note", "free-form note line (repeatable)")
	flag.Parse()
	if len(ins) == 0 {
		ins = multiFlag{"-"}
	}

	report := Report{Label: *label, Notes: notes}
	for _, in := range ins {
		if err := scanInput(in, &report); err != nil {
			log.Fatal(err)
		}
	}
	report.Kernel = kernelSummary(report.Benchmarks)
	report.Serving = servingSummary(report.Benchmarks)
	report.Adaptive = adaptiveSummary(report.Benchmarks)
	report.Fleet = fleetSummary(report.Benchmarks)
	report.Streaming = streamingSummary(report.Benchmarks)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d benchmarks to %s\n",
		len(report.Benchmarks), *out)
}

// scanInput parses one input ('-' = stdin) into the report, closing the
// file before returning.
func scanInput(in string, report *Report) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return sc.Err()
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName/sub-8   123   45678 ns/op   9.1 steps/s   64 B/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// kernelSummary extracts the SIMD kernel acceptance quantities from the
// BenchmarkKernelPeak and BenchmarkKernelGemm result lines, if any were
// parsed (nil otherwise). Per ISA it keeps the best shape's GFLOP/s; the
// speedup is best-AVX2 over best-scalar (same shape set either way).
func kernelSummary(benches []Benchmark) *KernelSummary {
	var s KernelSummary
	var found bool
	for _, b := range benches {
		switch {
		case strings.HasPrefix(b.Name, "BenchmarkKernelPeak"):
			if v, ok := b.Metrics["GFLOP/s-peak"]; ok {
				s.FMAPeakGFLOPs = v
				found = true
			}
		case strings.HasPrefix(b.Name, "BenchmarkKernelGemm/avx2/"):
			if v := b.Metrics["GFLOP/s"]; v > s.AVX2GemmGFLOPs {
				s.AVX2GemmGFLOPs = v
				s.PctPeak = b.Metrics["%peak"]
				found = true
			}
		case strings.HasPrefix(b.Name, "BenchmarkKernelGemm/scalar/"):
			if v := b.Metrics["GFLOP/s"]; v > s.ScalarGFLOPs {
				s.ScalarGFLOPs = v
				found = true
			}
		}
	}
	if !found {
		return nil
	}
	s.ISA = "scalar"
	if s.AVX2GemmGFLOPs > 0 {
		s.ISA = "avx2"
	}
	if s.AVX2GemmGFLOPs > 0 && s.ScalarGFLOPs > 0 {
		s.SIMDSpeedup = s.AVX2GemmGFLOPs / s.ScalarGFLOPs
	}
	return &s
}

// servingSummary extracts the serving SLOs from a BenchmarkServing result
// line, if one was parsed (nil otherwise).
func servingSummary(benches []Benchmark) *ServingSummary {
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkServing") || b.Metrics == nil {
			continue
		}
		if _, ok := b.Metrics["req/s"]; !ok {
			continue
		}
		return &ServingSummary{
			RequestsPerSec:  b.Metrics["req/s"],
			SerialReqPerSec: b.Metrics["serial-req/s"],
			BatchSpeedup:    b.Metrics["batch-speedup"],
			P50ms:           b.Metrics["p50-ms"],
			P99ms:           b.Metrics["p99-ms"],
			MeanBatch:       b.Metrics["mean-batch"],
		}
	}
	return nil
}

// adaptiveSummary extracts the adaptive-serving acceptance quantities from
// a BenchmarkAdaptiveServing result line, if one was parsed (nil
// otherwise).
func adaptiveSummary(benches []Benchmark) *AdaptiveSummary {
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkAdaptive") || b.Metrics == nil {
			continue
		}
		if _, ok := b.Metrics["req/s"]; !ok {
			continue
		}
		return &AdaptiveSummary{
			RequestsPerSec:  b.Metrics["req/s"],
			FP32ReqPerSec:   b.Metrics["fp32-req/s"],
			Speedup:         b.Metrics["adaptive-speedup"],
			ExitRate:        b.Metrics["exit-rate"],
			ExitCostRatio:   b.Metrics["exit-cost-ratio"],
			P50ms:           b.Metrics["p50-ms"],
			P99ms:           b.Metrics["p99-ms"],
			FP16LogitRelErr: b.Metrics["fp16-logit-relerr"],
			INT8LogitRelErr: b.Metrics["int8-logit-relerr"],
		}
	}
	return nil
}

// fleetSummary extracts the sharded-serving acceptance quantities from a
// BenchmarkFleetServing result line, if one was parsed (nil otherwise).
func fleetSummary(benches []Benchmark) *FleetSummary {
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkFleetServing") || b.Metrics == nil {
			continue
		}
		if _, ok := b.Metrics["virt-req/s"]; !ok {
			continue
		}
		return &FleetSummary{
			VirtualReqPerSec:      b.Metrics["virt-req/s"],
			OneShardVirtualReqSec: b.Metrics["virt-req/s-1shard"],
			ShardSpeedup:          b.Metrics["shard-speedup"],
			RequestsPerSec:        b.Metrics["req/s"],
			Swaps:                 b.Metrics["swaps"],
			SwapP99ms:             b.Metrics["swap-p99-ms"],
			SwapDrops:             b.Metrics["swap-drops"],
			RedispatchedPercent:   b.Metrics["%redispatched"],
		}
	}
	return nil
}

// streamingSummary extracts the stormwatch acceptance quantities from a
// BenchmarkStormwatch result line, if one was parsed (nil otherwise).
func streamingSummary(benches []Benchmark) *StreamingSummary {
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkStormwatch") || b.Metrics == nil {
			continue
		}
		if _, ok := b.Metrics["frames/s"]; !ok {
			continue
		}
		return &StreamingSummary{
			FramesPerSec:    b.Metrics["frames/s"],
			DroppedPercent:  b.Metrics["%dropped"],
			DegradedPercent: b.Metrics["%degraded"],
			P99FrameMs:      b.Metrics["p99-frame-ms"],
		}
	}
	return nil
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS suffix of a benchmark
// name, if present, so names stay stable across machines.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

// multiFlag collects repeated -note flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }
