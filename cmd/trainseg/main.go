// Command trainseg trains a reduced-scale Tiramisu or DeepLabv3+ on the
// synthetic climate dataset with the paper's full distributed stack —
// simulated ranks, hierarchical Horovod control plane, hybrid all-reduce,
// weighted loss, LARC and gradient lag — and reports loss and IoU.
//
// Usage:
//
//	trainseg -network tiramisu -ranks 4 -steps 60 -precision fp32
//
// With -ckpt-dir and -ckpt-every the run writes full training-state
// snapshots, and -resume continues an interrupted run from the newest one
// bit-exactly. -abort-at hard-kills the process (exit code 3) mid-run,
// simulating an HPC walltime kill or node failure; together they form the
// kill/restart harness:
//
//	trainseg -steps 60 -ckpt-dir /tmp/ck -ckpt-every 10 -abort-at 25  # dies at step 25
//	trainseg -steps 60 -ckpt-dir /tmp/ck -ckpt-every 10 -resume      # resumes from step 20
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/exaclim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainseg: ")

	network := flag.String("network", "tiramisu",
		strings.Join(exaclim.Networks(), " or "))
	ranks := flag.Int("ranks", 4, "simulated GPUs (data-parallel ranks)")
	perNode := flag.Int("gpus-per-node", 2, "simulated GPUs per node")
	steps := flag.Int("steps", 60, "training steps")
	precision := flag.String("precision", "fp32", "fp32 or fp16")
	lr := flag.Float64("lr", 2e-3, "learning rate")
	lag := flag.Int("lag", 0, "gradient lag (0 or 1)")
	larc := flag.Bool("larc", false, "enable LARC")
	size := flag.Int("size", 16, "input height/width")
	samples := flag.Int("samples", 32, "dataset size")
	val := flag.Int("validate", 3, "validation samples for IoU")
	seed := flag.Int64("seed", 12, "seed")
	weighting := flag.String("weighting", "sqrt",
		"loss weighting: "+strings.Join(exaclim.Weightings(), ", "))
	ckptDir := flag.String("ckpt-dir", "", "full-state snapshot directory (enables checkpointing)")
	ckptEvery := flag.Int("ckpt-every", 10, "snapshot every N steps (with -ckpt-dir)")
	ckptRetain := flag.Int("ckpt-retain", 3, "committed snapshots to keep")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in -ckpt-dir")
	abortAt := flag.Int("abort-at", 0, "hard-kill the process after step N (simulated preemption; exit code 3)")
	flag.Parse()

	prec := exaclim.FP32
	if *precision == "fp16" {
		prec = exaclim.FP16
	}

	opts := []exaclim.Option{
		exaclim.WithNetwork(*network, exaclim.Tiny),
		exaclim.WithSyntheticData(*size, *size, *samples, *seed),
		exaclim.WithPrecision(prec),
		exaclim.WithOptimizer("adam"),
		exaclim.WithLR(*lr),
		exaclim.WithGradientLag(*lag),
		exaclim.WithWeighting(*weighting),
		exaclim.WithRanks(*ranks, *perNode),
		exaclim.WithSteps(*steps),
		exaclim.WithSeed(*seed),
		exaclim.WithValidation(*val),
		exaclim.WithStepComputeSeconds(0.5),
		exaclim.WithObserver(exaclim.NewProgressLogger(os.Stdout, 10)),
	}
	if *perNode > 1 {
		opts = append(opts, exaclim.WithHybridAllReduce())
	}
	if *larc {
		opts = append(opts, exaclim.WithLARC(0))
	}
	if *ckptDir != "" {
		opts = append(opts,
			exaclim.WithCheckpointDir(*ckptDir),
			exaclim.WithCheckpointEvery(*ckptEvery),
			exaclim.WithCheckpointRetain(*ckptRetain))
	}
	if *resume {
		if *ckptDir == "" {
			log.Fatal("-resume needs -ckpt-dir")
		}
		path, step, err := exaclim.LatestCheckpoint(*ckptDir)
		if err != nil {
			log.Fatalf("no snapshot to resume from: %v", err)
		}
		fmt.Printf("resuming from %s (step %d)\n", path, step)
		opts = append(opts, exaclim.WithResume(*ckptDir))
	}
	if *abortAt > 0 {
		// Simulated preemption: a hard exit from the step callback, with
		// the async snapshot writer mid-flight like a real walltime kill.
		at := *abortAt
		opts = append(opts, exaclim.WithObserver(exaclim.ObserverFuncs{
			Step: func(s exaclim.StepStat) {
				if s.Step+1 >= at {
					fmt.Printf("simulated preemption: killed at step %d\n", s.Step+1)
					os.Exit(3)
				}
			},
		}))
	}

	exp, err := exaclim.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training %s, %d ranks (%d nodes × %d GPUs), %v, %d steps, weighting %s\n",
		*network, *ranks, *ranks / *perNode, *perNode, prec, *steps, *weighting)
	// Ctrl-C cancels the run cleanly; the partial result still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := exp.Run(ctx)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		log.Printf("interrupted after %d steps", len(res.History))
	}

	fmt.Printf("final loss %.4f (virtual makespan %.1fs, %d skipped steps)\n",
		res.FinalLoss, res.Makespan, res.SkippedSteps)
	if len(res.IoU) > 0 {
		fmt.Printf("IoU: BG %.3f  TC %.3f  AR %.3f  (mean %.3f, accuracy %.3f)\n",
			res.IoU[exaclim.ClassBackground], res.IoU[exaclim.ClassTC],
			res.IoU[exaclim.ClassAR], res.MeanIoU, res.Accuracy)
	}
	fmt.Printf("control plane (rank 0): %d sent, %d received, %d batches\n",
		res.ControlPlane.CtlSent, res.ControlPlane.CtlReceived, res.ControlPlane.Batches)
	if res.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d committed, newest %s\n", res.Checkpoints, res.LastCheckpoint)
	}
}
