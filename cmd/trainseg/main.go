// Command trainseg trains a reduced-scale Tiramisu or DeepLabv3+ on the
// synthetic climate dataset with the paper's full distributed stack —
// simulated ranks, hierarchical Horovod control plane, hybrid all-reduce,
// weighted loss, LARC and gradient lag — and reports loss and IoU.
//
// Usage:
//
//	trainseg -network tiramisu -ranks 4 -steps 60 -precision fp32
//
// With -ckpt-dir and -ckpt-every the run writes full training-state
// snapshots, and -resume continues an interrupted run from the newest one
// bit-exactly. -abort-at hard-kills the process (exit code 3) mid-run,
// simulating an HPC walltime kill or node failure; together they form the
// kill/restart harness:
//
//	trainseg -steps 60 -ckpt-dir /tmp/ck -ckpt-every 10 -abort-at 25  # dies at step 25
//	trainseg -steps 60 -ckpt-dir /tmp/ck -ckpt-every 10 -resume      # resumes from step 20
//
// Elastic training: -global-batch pins the trajectory to N data columns
// per step regardless of the world size, -resume-ranks resumes a snapshot
// at a different rank count (the requeued-allocation experiment), and
// -fail-node-at node:step injects a mid-run node failure that the run
// survives by restarting from the last snapshot on the survivors:
//
//	trainseg -ranks 8 -global-batch 8 -ckpt-dir /tmp/ck -abort-at 25   # allocation lost
//	trainseg -resume -resume-ranks 4 -global-batch 8 -ckpt-dir /tmp/ck # resume on 4 ranks
//	trainseg -ranks 4 -gpus-per-node 1 -fail-node-at 2:15 -ckpt-dir /tmp/ck -ckpt-every 10
//
// -compact-snapshots writes delta-compacted snapshots (≥2× smaller; the
// weights stay lossless, Adam moments are quantized).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/exaclim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainseg: ")

	network := flag.String("network", "tiramisu",
		strings.Join(exaclim.Networks(), " or "))
	ranks := flag.Int("ranks", 4, "simulated GPUs (data-parallel ranks)")
	perNode := flag.Int("gpus-per-node", 2, "simulated GPUs per node")
	steps := flag.Int("steps", 60, "training steps")
	precision := flag.String("precision", "fp32", "fp32 or fp16")
	lr := flag.Float64("lr", 2e-3, "learning rate")
	lag := flag.Int("lag", 0, "gradient lag (0 or 1)")
	larc := flag.Bool("larc", false, "enable LARC")
	size := flag.Int("size", 16, "input height/width")
	samples := flag.Int("samples", 32, "dataset size")
	val := flag.Int("validate", 3, "validation samples for IoU")
	seed := flag.Int64("seed", 12, "seed")
	weighting := flag.String("weighting", "sqrt",
		"loss weighting: "+strings.Join(exaclim.Weightings(), ", "))
	ckptDir := flag.String("ckpt-dir", "", "full-state snapshot directory (enables checkpointing)")
	ckptEvery := flag.Int("ckpt-every", 10, "snapshot every N steps (with -ckpt-dir)")
	ckptRetain := flag.Int("ckpt-retain", 3, "committed snapshots to keep")
	resume := flag.Bool("resume", false, "resume from the newest snapshot in -ckpt-dir")
	abortAt := flag.Int("abort-at", 0, "hard-kill the process after step N (simulated preemption; exit code 3)")
	resumeRanks := flag.Int("resume-ranks", 0, "resume the snapshot elastically at this world size (overrides -ranks)")
	globalBatch := flag.Int("global-batch", 0, "data columns per step, independent of the world size (enables elastic training)")
	failNodeAt := flag.String("fail-node-at", "", "inject a node failure as node:step (repeatable, comma-separated)")
	compact := flag.Bool("compact-snapshots", false, "write delta-compacted snapshots (lossless weights, quantized Adam moments)")
	flag.Parse()

	prec := exaclim.FP32
	if *precision == "fp16" {
		prec = exaclim.FP16
	}

	// Elastic mode: any of these pins the trajectory to a global batch, so
	// the auto hybrid reducer (whose summation order depends on the node
	// packing) must stay off.
	if *resumeRanks > 0 {
		*ranks = *resumeRanks
		if *ranks%*perNode != 0 {
			*perNode = 1
		}
	}
	elastic := *globalBatch > 0 || *failNodeAt != "" || *resumeRanks > 0

	opts := []exaclim.Option{
		exaclim.WithNetwork(*network, exaclim.Tiny),
		exaclim.WithSyntheticData(*size, *size, *samples, *seed),
		exaclim.WithPrecision(prec),
		exaclim.WithOptimizer("adam"),
		exaclim.WithLR(*lr),
		exaclim.WithGradientLag(*lag),
		exaclim.WithWeighting(*weighting),
		exaclim.WithRanks(*ranks, *perNode),
		exaclim.WithSteps(*steps),
		exaclim.WithSeed(*seed),
		exaclim.WithValidation(*val),
		exaclim.WithStepComputeSeconds(0.5),
		exaclim.WithObserver(exaclim.NewProgressLogger(os.Stdout, 10)),
	}
	if *perNode > 1 && !elastic {
		opts = append(opts, exaclim.WithHybridAllReduce())
	}
	if *globalBatch > 0 {
		opts = append(opts, exaclim.WithGlobalBatch(*globalBatch))
	}
	if *compact {
		opts = append(opts, exaclim.WithSnapshotCompaction(true))
	}
	for _, spec := range strings.Split(*failNodeAt, ",") {
		if spec == "" {
			continue
		}
		var node, step int
		if _, err := fmt.Sscanf(spec, "%d:%d", &node, &step); err != nil {
			log.Fatalf("-fail-node-at wants node:step, got %q", spec)
		}
		opts = append(opts, exaclim.WithNodeFailure(node, step))
	}
	if *larc {
		opts = append(opts, exaclim.WithLARC(0))
	}
	if *ckptDir != "" {
		opts = append(opts,
			exaclim.WithCheckpointDir(*ckptDir),
			exaclim.WithCheckpointEvery(*ckptEvery),
			exaclim.WithCheckpointRetain(*ckptRetain))
	}
	if *resume || *resumeRanks > 0 {
		if *ckptDir == "" {
			log.Fatal("-resume needs -ckpt-dir")
		}
		info, err := exaclim.InspectCheckpoint(*ckptDir)
		if err != nil {
			log.Fatalf("no snapshot to resume from: %v", err)
		}
		if *resumeRanks > 0 {
			fmt.Printf("resuming from %s (step %d, written by %d ranks over a global batch of %d) elastically at %d ranks\n",
				info.Path, info.Step, info.Ranks, info.GlobalBatch, *ranks)
			opts = append(opts, exaclim.WithElasticResume(*ckptDir))
		} else {
			fmt.Printf("resuming from %s (step %d)\n", info.Path, info.Step)
			opts = append(opts, exaclim.WithResume(*ckptDir))
		}
	}
	if *abortAt > 0 {
		// Simulated preemption: a hard exit from the step callback, with
		// the async snapshot writer mid-flight like a real walltime kill.
		at := *abortAt
		opts = append(opts, exaclim.WithObserver(exaclim.ObserverFuncs{
			Step: func(s exaclim.StepStat) {
				if s.Step+1 >= at {
					fmt.Printf("simulated preemption: killed at step %d\n", s.Step+1)
					os.Exit(3)
				}
			},
		}))
	}

	exp, err := exaclim.New(opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training %s, %d ranks (%d nodes × %d GPUs), %v, %d steps, weighting %s\n",
		*network, *ranks, *ranks / *perNode, *perNode, prec, *steps, *weighting)
	// Ctrl-C cancels the run cleanly; the partial result still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := exp.Run(ctx)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		log.Printf("interrupted after %d steps", len(res.History))
	}

	fmt.Printf("final loss %.4f (virtual makespan %.1fs, %d skipped steps)\n",
		res.FinalLoss, res.Makespan, res.SkippedSteps)
	if len(res.IoU) > 0 {
		fmt.Printf("IoU: BG %.3f  TC %.3f  AR %.3f  (mean %.3f, accuracy %.3f)\n",
			res.IoU[exaclim.ClassBackground], res.IoU[exaclim.ClassTC],
			res.IoU[exaclim.ClassAR], res.MeanIoU, res.Accuracy)
	}
	fmt.Printf("control plane (rank 0): %d sent, %d received, %d batches\n",
		res.ControlPlane.CtlSent, res.ControlPlane.CtlReceived, res.ControlPlane.Batches)
	if res.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d committed, newest %s\n", res.Checkpoints, res.LastCheckpoint)
	}
}
