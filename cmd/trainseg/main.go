// Command trainseg trains a reduced-scale Tiramisu or DeepLabv3+ on the
// synthetic climate dataset with the paper's full distributed stack —
// simulated ranks, hierarchical Horovod control plane, hybrid all-reduce,
// weighted loss, LARC and gradient lag — and reports loss and IoU.
//
// Usage:
//
//	trainseg -network tiramisu -ranks 4 -steps 60 -precision fp32
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/climate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/loss"
	"repro/internal/models"
	"repro/internal/simnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainseg: ")

	network := flag.String("network", "tiramisu", "tiramisu or deeplab")
	ranks := flag.Int("ranks", 4, "simulated GPUs (data-parallel ranks)")
	perNode := flag.Int("gpus-per-node", 2, "simulated GPUs per node")
	steps := flag.Int("steps", 60, "training steps")
	precision := flag.String("precision", "fp32", "fp32 or fp16")
	lr := flag.Float64("lr", 2e-3, "learning rate")
	lag := flag.Int("lag", 0, "gradient lag (0 or 1)")
	larc := flag.Bool("larc", false, "enable LARC")
	size := flag.Int("size", 16, "input height/width")
	samples := flag.Int("samples", 32, "dataset size")
	val := flag.Int("validate", 3, "validation samples for IoU")
	seed := flag.Int64("seed", 12, "seed")
	weighting := flag.String("weighting", "sqrt", "loss weighting: none, inv, sqrt")
	flag.Parse()

	prec := graph.FP32
	if *precision == "fp16" {
		prec = graph.FP16
	}
	var wt loss.Weighting
	switch *weighting {
	case "none":
		wt = loss.Unweighted
	case "inv":
		wt = loss.InverseFrequency
	default:
		wt = loss.InverseSqrtFrequency
	}

	ds := climate.NewDataset(climate.DefaultGenConfig(*size, *size, *seed), *samples)
	build := func() (*models.Network, error) {
		cfg := models.Config{
			BatchSize:  1,
			InChannels: climate.NumChannels,
			NumClasses: climate.NumClasses,
			Height:     *size,
			Width:      *size,
			Seed:       *seed + 1,
		}
		if *network == "deeplab" {
			return models.BuildDeepLab(models.TinyDeepLab(cfg))
		}
		return models.BuildTiramisu(models.TinyTiramisu(cfg))
	}

	nodes := (*ranks + *perNode - 1) / *perNode
	cfg := core.Config{
		BuildNet:           build,
		Precision:          prec,
		Optimizer:          core.Adam,
		LR:                 *lr,
		UseLARC:            *larc,
		GradientLag:        *lag,
		Weighting:          wt,
		Dataset:            ds,
		Ranks:              *ranks,
		Fabric:             simnet.NewTwoLevelFabric(nodes, *perNode, simnet.LinkSpec{LatencySec: 1e-6, BytesPerSec: 150e9}, simnet.LinkSpec{LatencySec: 1.5e-6, BytesPerSec: 12.5e9}),
		HybridReduce:       *perNode > 1,
		Steps:              *steps,
		Seed:               *seed,
		ValidationSize:     *val,
		StepComputeSeconds: 0.5,
	}
	if *ranks%*perNode != 0 {
		log.Fatalf("ranks (%d) must be a multiple of gpus-per-node (%d)", *ranks, *perNode)
	}

	fmt.Printf("training %s, %d ranks (%d nodes × %d GPUs), %s, %d steps, weighting %s\n",
		*network, *ranks, nodes, *perNode, prec, *steps, wt)
	res, err := core.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sm := core.SmoothedLoss(res.History, 10)
	for i, h := range res.History {
		if i%10 == 0 || i == len(res.History)-1 {
			fmt.Printf("  step %3d  t=%6.1fs  loss %8.4f  (smoothed %8.4f)\n",
				h.Step, h.VirtualTime, h.Loss, sm[i])
		}
	}
	fmt.Printf("final loss %.4f (virtual makespan %.1fs, %d skipped steps)\n",
		res.FinalLoss, res.Makespan, res.SkippedSteps)
	if len(res.IoU) > 0 {
		fmt.Printf("IoU: BG %.3f  TC %.3f  AR %.3f  (mean %.3f, accuracy %.3f)\n",
			res.IoU[climate.ClassBackground], res.IoU[climate.ClassTC],
			res.IoU[climate.ClassAR], res.MeanIoU, res.Accuracy)
	}
	fmt.Printf("control plane (rank 0): %d sent, %d received, %d batches\n",
		res.CtlStats.CtlSent, res.CtlStats.CtlReceived, res.CtlStats.Batches)
}
