// Command climgen materializes a synthetic CAM5-style climate dataset into
// an h5lite container, the stand-in for the paper's HDF5 snapshot archive.
//
// Usage:
//
//	climgen -out climate.h5l -samples 64 -height 96 -width 144 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/exaclim"
	"repro/internal/climate"
	"repro/internal/h5lite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("climgen: ")

	out := flag.String("out", "climate.h5l", "output file path")
	samples := flag.Int("samples", 64, "number of snapshots to generate")
	height := flag.Int("height", 96, "grid rows (latitude)")
	width := flag.Int("width", 144, "grid columns (longitude)")
	seed := flag.Int64("seed", 7, "generator seed")
	stats := flag.Bool("stats", true, "print class statistics")
	flag.Parse()

	ds := exaclim.SyntheticDataset(*height, *width, *samples, *seed)
	lib := h5lite.NewLibrary(0)
	w, err := lib.Create(*out, h5lite.Meta{
		Channels: climate.NumChannels, Height: *height, Width: *width,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < ds.Size; i++ {
		s := ds.Sample(i)
		if err := w.Append(s.Fields.Data(), s.Labels.Data()); err != nil {
			log.Fatal(err)
		}
		if (i+1)%16 == 0 {
			fmt.Fprintf(os.Stderr, "  %d/%d samples\n", i+1, ds.Size)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d samples (%d×%d×%d) to %s (%.1f MB)\n",
		ds.Size, climate.NumChannels, *height, *width, *out,
		float64(ds.Size*ds.SampleBytes())/1e6)

	if *stats {
		n := min(ds.Size, 8)
		freq := ds.ClassFrequencies(n)
		fmt.Printf("class frequencies (first %d samples): BG %.3f%%, TC %.3f%%, AR %.3f%%\n",
			n, freq[0]*100, freq[1]*100, freq[2]*100)
		fmt.Printf("splits: %d train / %d test / %d validation\n",
			len(ds.Indices(climate.Train)), len(ds.Indices(climate.Test)),
			len(ds.Indices(climate.Validation)))
	}
}
