// Command perfreport regenerates the paper's performance tables: the
// single-GPU operation counts and training rates of Figure 2, and the
// per-kernel-category profiles of Figures 3, 8 (Tiramisu) and 9
// (DeepLabv3+), computed by graph-walk FLOP analysis (Section VI) over the
// paper-exact networks at 1152×768×16 plus the roofline GPU model.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/exaclim"
	"repro/internal/graph"
	"repro/internal/perfmodel"
)

func analysis(network string, p exaclim.Precision, batch, channels int) *graph.Analysis {
	a, err := exaclim.PaperAnalysis(network, p, batch, channels)
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func fig2() {
	fmt.Println("Fig 2 — single-GPU performance (paper values in parentheses)")
	fmt.Printf("%-12s %-6s %-5s %12s %12s %12s %8s\n",
		"Network", "GPU", "Prec", "TF/sample", "samples/s", "TF/s", "%peak")
	rows := []struct {
		network  string
		gpu      perfmodel.GPU
		prec     exaclim.Precision
		batch    int
		channels int
		paper    string
	}{
		{"deeplab", perfmodel.V100(), exaclim.FP16, 2, 16, "(2.67, 31%)"},
		{"deeplab", perfmodel.V100(), exaclim.FP32, 1, 16, "(0.87, 80%)"},
		{"tiramisu", perfmodel.V100(), exaclim.FP16, 2, 16, "(5.00, 17%)"},
		{"tiramisu", perfmodel.V100(), exaclim.FP32, 1, 16, "(1.91, 51%)"},
		{"tiramisu", perfmodel.P100(), exaclim.FP32, 1, 4, "(1.20, 48%)"},
	}
	for _, r := range rows {
		a := analysis(r.network, r.prec, r.batch, r.channels)
		got := perfmodel.SingleGPUPerf(r.network, a, r.gpu, r.prec)
		fmt.Printf("%-12s %-6s %-5s %12.2f %12.2f %12.2f %7.0f%%  %s\n",
			got.Network, got.GPU, got.Precision, got.TFPerSample,
			got.SamplesPerS, got.TFps, got.PctPeak, r.paper)
	}
}

func kernelTable(network string, fig string) {
	for _, p := range []exaclim.Precision{exaclim.FP32, exaclim.FP16} {
		batch := 1
		if p == exaclim.FP16 {
			batch = 2
		}
		a := analysis(network, p, batch, 16)
		fmt.Printf("\n%s — %s %s training profile (V100)\n", fig, network, p)
		fmt.Print(perfmodel.FormatTable(perfmodel.KernelTable(a, perfmodel.V100(), p)))
		fmt.Printf("modeled step time: %.0f ms\n",
			perfmodel.StepSeconds(a, perfmodel.V100(), p)*1e3)
	}
}

func main() {
	log.SetFlags(0)
	table := flag.String("table", "all", "fig2, fig8, fig9, or all")
	flag.Parse()

	switch *table {
	case "fig2":
		fig2()
	case "fig8":
		kernelTable("tiramisu", "Fig 8")
	case "fig9":
		kernelTable("deeplab", "Fig 9")
	default:
		fig2()
		kernelTable("tiramisu", "Fig 8")
		kernelTable("deeplab", "Fig 9")
	}
}
