// Command stormwatch is the streaming storm-analytics daemon: it trains a
// small model (or loads a checkpoint), then runs the live pipeline — a
// rate-controlled synthetic climate source feeding the tiled-inference
// server through a bounded, backpressure-aware frame queue, with the online
// tracker linking detections into tracks and emitting birth/death/merge
// events as the stream runs. SIGINT (or -duration elapsing) stops
// production and drains gracefully: every admitted frame is still
// segmented and tracked before the daemon exits.
//
// Usage:
//
//	stormwatch -fps 4 -duration 30s -policy degrade -profile diurnal
//	stormwatch -max-frames 24 -events events.jsonl        # bounded CI run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/exaclim"
	"repro/internal/climate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stormwatch: ")

	height := flag.Int("height", 64, "grid rows")
	width := flag.Int("width", 96, "grid columns")
	seed := flag.Int64("seed", 7, "generator seed")
	fps := flag.Float64("fps", 4, "base frame rate (frames per second)")
	duration := flag.Duration("duration", 0, "stop producing after this long (0: unbounded)")
	maxFrames := flag.Int("max-frames", 0, "stop after this many frames (0: unbounded); -duration and -max-frames may combine, first bound wins")
	profileName := flag.String("profile", "steady", "load profile: steady or diurnal")
	burstFactor := flag.Float64("burst-factor", 4, "diurnal peak rate as a multiple of -fps")
	burstPeriod := flag.Duration("burst-period", 10*time.Second, "diurnal cycle length")
	policyName := flag.String("policy", "block", "backpressure policy: block, drop-oldest, or degrade")
	queueDepth := flag.Int("queue", 4, "frame queue depth")
	minPixels := flag.Int("min-pixels", 4, "minimum component size (mask speckle filter)")
	trainSteps := flag.Int("train-steps", 8, "training steps for the model before streaming")
	replicas := flag.Int("replicas", 2, "inference server replicas")
	maxBatch := flag.Int("max-batch", 8, "tile batch cap per executor run")
	events := flag.String("events", "", "write tracker events as JSON lines to this file")
	vizDir := flag.String("viz-dir", "", "save overlay PNG snapshots into this directory")
	vizEvery := flag.Int("viz-every", 8, "frames between -viz-dir snapshots")
	flag.Parse()

	policy, err := parsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := parseProfile(*profileName)
	if err != nil {
		log.Fatal(err)
	}
	if *duration <= 0 && *maxFrames <= 0 {
		log.Fatal("give -duration and/or -max-frames: an unbounded synthetic source cannot be planned")
	}

	// The sequence plans its storms up front, so it needs a frame horizon:
	// the worst-case frame count this run can consume (peak rate × wall
	// clock, plus slack for timer jitter).
	horizon := *maxFrames
	if *duration > 0 {
		peak := *fps
		if profile == exaclim.StreamDiurnal {
			peak *= *burstFactor
		}
		byTime := int(math.Ceil(duration.Seconds()*peak)) + 2*int(math.Ceil(peak)) + 16
		if horizon == 0 || byTime < horizon {
			horizon = byTime
		}
	}
	src, err := exaclim.SyntheticSequence(*height, *width, horizon, *seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := exaclim.StreamConfig{
		Source:      src,
		FPS:         *fps,
		MaxFrames:   horizon,
		Profile:     profile,
		BurstFactor: *burstFactor,
		BurstPeriod: *burstPeriod,
		Policy:      policy,
		QueueDepth:  *queueDepth,
		MinPixels:   *minPixels,
		VizDir:      *vizDir,
	}
	if *vizDir != "" {
		if err := os.MkdirAll(*vizDir, 0o755); err != nil {
			log.Fatal(err)
		}
		cfg.VizEvery = *vizEvery
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.EventWriter = f
	}

	model := trainModel(*trainSteps, *seed)
	watcher, err := exaclim.NewStormWatcher(model, cfg,
		exaclim.WithReplicas(*replicas),
		exaclim.WithMaxBatch(*maxBatch),
		exaclim.WithServeSegmentConfig(exaclim.SegmentConfig{Overlap: 3}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer watcher.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	log.Printf("streaming %d×%d frames at %g fps (%s profile, %s policy, queue %d)…",
		*height, *width, *fps, profile, policy, *queueDepth)
	res, err := watcher.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	printSummary(res, watcher)
}

// trainModel runs a short tiny-model training so the stream serves real
// predicted masks, mirroring stormstats -predict-steps.
func trainModel(steps int, seed int64) *exaclim.Model {
	const tile = 24
	exp, err := exaclim.New(
		exaclim.WithNetwork("tiramisu", exaclim.Tiny),
		exaclim.WithSyntheticData(tile, tile, 32, seed+1),
		exaclim.WithOptimizer("adam"),
		exaclim.WithLR(3e-3),
		exaclim.WithSteps(steps),
		exaclim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training %d steps before streaming…", steps)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res.Model
}

func printSummary(res *exaclim.StreamResult, watcher *exaclim.StormWatcher) {
	st := res.Stats
	fmt.Printf("stream: %d produced, %d processed (%.2f fps effective), %d dropped, %d degraded over %s\n",
		st.Produced, st.Processed, st.EffectiveFPS, st.Dropped, st.Degraded, st.Elapsed.Round(time.Millisecond))
	fmt.Printf("tracks: %d births, %d deaths, %d merges; active at end TC %d / AR %d (peak %d / %d)\n",
		st.Births, st.Deaths, st.Merges, st.ActiveTC, st.ActiveAR, st.PeakActiveTC, st.PeakActiveAR)
	fmt.Printf("latency: p50 %s  p95 %s  p99 %s; track lifetime mean %.1f frames (p95 %.1f)\n",
		st.LatencyP50.Round(time.Microsecond), st.LatencyP95.Round(time.Microsecond),
		st.LatencyP99.Round(time.Microsecond), st.LifetimeMean, st.LifetimeP95)
	_, peak := watcher.QueueDepth()
	srv := watcher.ServerStats()
	fmt.Printf("server: %.1f tiles/s, mean batch %.1f, tile-queue peak %d; frame-queue peak %d\n",
		srv.TilesPerSec, srv.MeanBatch, srv.QueueDepthPeak, peak)
	for i, tr := range res.Tracks {
		if i >= 3 {
			fmt.Printf("  … %d more tracks\n", len(res.Tracks)-3)
			break
		}
		name := "TC"
		if tr.Class == climate.ClassAR {
			name = "AR"
		}
		dy, dx := tr.Displacement()
		fmt.Printf("  %s track: frames %d–%d (%d), drift (Δy %+.1f, Δx %+.1f), peak wind %.1f m/s\n",
			name, tr.Frames[0], tr.Frames[len(tr.Frames)-1], tr.Duration(), dy, dx, tr.PeakWind())
	}
}

func parsePolicy(s string) (exaclim.StreamPolicy, error) {
	switch s {
	case "block":
		return exaclim.StreamBlock, nil
	case "drop-oldest":
		return exaclim.StreamDropOldest, nil
	case "degrade":
		return exaclim.StreamDegrade, nil
	}
	return 0, fmt.Errorf("unknown -policy %q (want block, drop-oldest, or degrade)", s)
}

func parseProfile(s string) (exaclim.StreamProfile, error) {
	switch s {
	case "steady":
		return exaclim.StreamSteady, nil
	case "diurnal":
		return exaclim.StreamDiurnal, nil
	}
	return 0, fmt.Errorf("unknown -profile %q (want steady or diurnal)", s)
}
