#!/bin/sh
# doclint: fail when an exported identifier in the public exaclim package
# (or the repo root) lacks a doc comment. Grep-based on purpose: no
# dependencies beyond awk, so it runs identically in CI and locally.
#
# Usage: scripts/doclint.sh [dir ...]   (default: exaclim .)
set -eu

dirs="${*:-exaclim .}"
fail=0
for d in $dirs; do
  for f in "$d"/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    out=$(awk '
      # Track whether the previous line was part of a comment (or a
      # continuation inside a var/const/type block, where the block doc
      # or a per-item comment both count).
      /^[[:space:]]*\/\// { prev_comment = 1; next }
      /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
        if (!prev_comment) { printf "%d: %s\n", FNR, $0 }
      }
      { prev_comment = 0 }
    ' "$f")
    if [ -n "$out" ]; then
      echo "$f: exported identifiers without doc comments:"
      echo "$out" | sed 's/^/  /'
      fail=1
    fi
  done
done
if [ "$fail" -ne 0 ]; then
  echo "doclint: add doc comments to the identifiers above" >&2
  exit 1
fi
echo "doclint: all exported identifiers documented"
